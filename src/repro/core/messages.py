"""Messages, control codes, and byte alignment.

Section 4.9: every transaction ends with an interjection followed by a
two-cycle control sequence explaining *why* the bus was interjected.
The paper specifies the end-of-message case ("the transmitter signals
a complete message by driving Control Bit 0 high; the receiver ACKs
the message by driving Control Bit 1 low") and names a "General Error"
code for mediator-raised conditions (Figure 6); the remaining code is
used for receiver-initiated aborts, matching the released MBus
specification's layout.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from repro.core.addresses import Address
from repro.core.errors import ProtocolError


class ControlCode(enum.Enum):
    """The two control bits latched at the end of every transaction.

    The tuple is ``(bit0, bit1)`` in transmission order.
    """

    EOM_ACK = (1, 0)        # complete message, receiver acknowledged
    EOM_NAK = (1, 1)        # complete message, receiver refused / absent
    GENERAL_ERROR = (0, 0)  # mediator-raised (null transaction, runaway)
    RX_ABORT = (0, 1)       # receiver interjected mid-message (e.g. overrun)

    @property
    def bit0(self) -> int:
        return self.value[0]

    @property
    def bit1(self) -> int:
        return self.value[1]

    @property
    def is_success(self) -> bool:
        return self is ControlCode.EOM_ACK

    @staticmethod
    def from_bits(bit0: int, bit1: int) -> "ControlCode":
        code = _CODE_BY_BITS.get((bit0, bit1))
        if code is None:
            raise ProtocolError(f"no control code for bits ({bit0}, {bit1})")
        return code


_CODE_BY_BITS = {code.value: code for code in ControlCode}


def pad_to_byte(bits: Tuple[int, ...]) -> Tuple[int, ...]:
    """Pad a bit sequence with zeros up to the next byte boundary.

    Section 4.9: interjection requests make nodes observe a varying
    number of clock edges, so MBus requires byte-aligned messages,
    "potentially requiring a small amount (up to 7 bits) of padding".
    """
    remainder = len(bits) % 8
    if remainder == 0:
        return tuple(bits)
    return tuple(bits) + (0,) * (8 - remainder)


def bytes_to_bits(payload: bytes) -> Tuple[int, ...]:
    """Expand bytes into bits, MSB first, as driven on the DATA ring."""
    bits = []
    for byte in payload:
        for i in range(7, -1, -1):
            bits.append((byte >> i) & 1)
    return tuple(bits)


def bits_to_bytes(bits: Tuple[int, ...]) -> bytes:
    """Pack byte-aligned bits back into bytes (MSB first).

    Trailing bits beyond the last byte boundary are discarded, exactly
    as a receiver discards non-byte-aligned bits after an interjection
    (Figure 7, note 4).
    """
    out = bytearray()
    for i in range(0, len(bits) - len(bits) % 8, 8):
        byte = 0
        for bit in bits[i : i + 8]:
            byte = (byte << 1) | (bit & 1)
        out.append(byte)
    return bytes(out)


@dataclass(frozen=True)
class Message:
    """One MBus message: destination address plus a byte payload."""

    dest: Address
    payload: bytes = b""
    priority: bool = False   # request the priority arbitration slot (4.3)

    def __post_init__(self) -> None:
        if not isinstance(self.payload, (bytes, bytearray)):
            raise ProtocolError("payload must be bytes")

    @property
    def n_bytes(self) -> int:
        return len(self.payload)

    @property
    def n_data_bits(self) -> int:
        return 8 * len(self.payload)

    def data_bits(self) -> Tuple[int, ...]:
        return bytes_to_bits(bytes(self.payload))

    def address_bits(self) -> Tuple[int, ...]:
        return self.dest.bits()


@dataclass
class ReceivedMessage:
    """What a layer controller sees after a successful reception."""

    source_hint: str          # simulator-side provenance (not on the wire)
    dest: Address
    payload: bytes
    broadcast: bool = False
    control: ControlCode = ControlCode.EOM_ACK
    arrived_at_ps: int = 0
    metadata: dict = field(default_factory=dict)
