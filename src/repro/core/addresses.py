"""MBus addressing: short prefixes, full prefixes, FU-IDs, broadcast.

Section 4.6 of the paper: an address is a *prefix* naming a physical
MBus interface plus a 4-bit *functional unit ID* (FU-ID) naming a
sub-component behind that interface.  Prefix 0x0 is reserved for
broadcast (the FU-ID is then a broadcast channel); short prefix 0xF
flags a 32-bit full address carrying a globally unique 20-bit full
prefix (Section 4.7).

Wire formats (most significant bit transmitted first):

* short address, 8 bits::

      [7:4] short prefix   [3:0] FU-ID

* full address, 32 bits::

      [31:28] 0xF   [27:8] full prefix   [7:4] reserved   [3:0] FU-ID
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Container, Optional, Tuple

from repro.core import constants
from repro.core.errors import AddressError

BROADCAST_PREFIX = constants.BROADCAST_PREFIX_VALUE
FULL_ADDR_MARKER = constants.FULL_ADDR_MARKER_VALUE


class ShortPrefix(int):
    """A 4-bit short prefix (0x1 .. 0xE assignable; 0x0/0xF reserved)."""

    def __new__(cls, value: int) -> "ShortPrefix":
        if not 0 <= value <= 0xF:
            raise AddressError(f"short prefix {value:#x} outside 4-bit range")
        return super().__new__(cls, value)

    @property
    def is_broadcast(self) -> bool:
        return int(self) == BROADCAST_PREFIX

    @property
    def is_full_marker(self) -> bool:
        return int(self) == FULL_ADDR_MARKER

    @property
    def is_assignable(self) -> bool:
        """True for the 14 prefixes a member node may actually hold."""
        return not (self.is_broadcast or self.is_full_marker)


class FullPrefix(int):
    """A globally unique 20-bit full prefix (one per chip design)."""

    def __new__(cls, value: int) -> "FullPrefix":
        if not 0 <= value < (1 << constants.FULL_PREFIX_BITS):
            raise AddressError(f"full prefix {value:#x} outside 20-bit range")
        return super().__new__(cls, value)


@dataclass(frozen=True)
class Address:
    """A resolved MBus destination.

    Exactly one of ``short_prefix`` / ``full_prefix`` must be given.
    ``fu_id`` addresses the functional unit (or, for broadcast, names
    the broadcast channel).
    """

    fu_id: int = 0
    short_prefix: int = None
    full_prefix: int = None

    def __post_init__(self) -> None:
        if not 0 <= self.fu_id < (1 << constants.FU_ID_BITS):
            raise AddressError(f"FU-ID {self.fu_id:#x} outside 4-bit range")
        if (self.short_prefix is None) == (self.full_prefix is None):
            raise AddressError(
                "exactly one of short_prefix / full_prefix must be set"
            )
        if self.short_prefix is not None:
            prefix = ShortPrefix(self.short_prefix)
            if prefix.is_full_marker:
                raise AddressError(
                    "short prefix 0xF is reserved to flag full addresses"
                )
        else:
            FullPrefix(self.full_prefix)

    # -- classification ----------------------------------------------------
    @property
    def is_short(self) -> bool:
        return self.short_prefix is not None

    @property
    def is_broadcast(self) -> bool:
        return self.is_short and self.short_prefix == BROADCAST_PREFIX

    @property
    def n_bits(self) -> int:
        """Bits on the wire: 8 for short, 32 for full (Section 6.1)."""
        return (
            constants.SHORT_ADDR_BITS if self.is_short else constants.FULL_ADDR_BITS
        )

    # -- constructors --------------------------------------------------------
    @staticmethod
    def broadcast(channel: int) -> "Address":
        """A broadcast address on ``channel`` (Section 4.6)."""
        return Address(fu_id=channel, short_prefix=BROADCAST_PREFIX)

    @staticmethod
    def short(prefix: int, fu_id: int = 0) -> "Address":
        return Address(fu_id=fu_id, short_prefix=prefix)

    @staticmethod
    def full(prefix: int, fu_id: int = 0) -> "Address":
        return Address(fu_id=fu_id, full_prefix=prefix)

    # -- wire format ---------------------------------------------------------
    def encode(self) -> int:
        """Encode to the integer transmitted MSB-first on the DATA ring."""
        if self.is_short:
            return (self.short_prefix << 4) | self.fu_id
        return (
            (FULL_ADDR_MARKER << 28)
            | (self.full_prefix << 8)
            | self.fu_id
        )

    def bits(self) -> Tuple[int, ...]:
        """The address as a tuple of bits, MSB first."""
        word = self.encode()
        n = self.n_bits
        return tuple((word >> (n - 1 - i)) & 1 for i in range(n))

    def matches(
        self,
        short_prefix: Optional[int],
        full_prefix: Optional[int],
        broadcast_channels: Container[int],
    ) -> bool:
        """Would a node with these identifiers accept this address?

        The single matching predicate shared by the edge-accurate
        engine (MemberEngine) and the transaction-level planner, so
        the two backends can never resolve different receiver sets.
        """
        if self.is_broadcast:
            return self.fu_id in broadcast_channels
        if self.is_short:
            return (
                short_prefix is not None
                and self.short_prefix == short_prefix
            )
        return full_prefix is not None and self.full_prefix == full_prefix

    @staticmethod
    def decode(word: int, n_bits: int) -> "Address":
        """Decode a received address word of 8 or 32 bits."""
        if n_bits == constants.SHORT_ADDR_BITS:
            return Address(fu_id=word & 0xF, short_prefix=(word >> 4) & 0xF)
        if n_bits == constants.FULL_ADDR_BITS:
            marker = (word >> 28) & 0xF
            if marker != FULL_ADDR_MARKER:
                raise AddressError(
                    f"full address word {word:#010x} lacks 0xF marker"
                )
            return Address(
                fu_id=word & 0xF,
                full_prefix=(word >> 8) & ((1 << constants.FULL_PREFIX_BITS) - 1),
            )
        raise AddressError(f"addresses are 8 or 32 bits, not {n_bits}")

    def __str__(self) -> str:
        if self.is_broadcast:
            return f"broadcast(ch={self.fu_id})"
        if self.is_short:
            return f"short({self.short_prefix:#x}.{self.fu_id:#x})"
        return f"full({self.full_prefix:#07x}.{self.fu_id:#x})"
