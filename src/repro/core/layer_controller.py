"""Generic layer controller: the register/memory face of a node.

Figure 8: "The generic layer controller provides a simple
register/memory interface for a node, but its design is not specific
to MBus."  It is the blue (deepest-gated) power domain: powered only
when the node is active.

The functional-unit convention implemented here mirrors the released
MBus ecosystem: FU-ID 0 carries register writes, FU-ID 1 carries
memory writes, FU-ID 2 carries memory-read requests whose replies are
sent back over the bus, and higher FU-IDs are free for
application-defined handlers (e.g. the imager's frame buffer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.errors import ProtocolError
from repro.core.messages import ReceivedMessage

FU_REGISTER = 0
FU_MEMORY_WRITE = 1
FU_MEMORY_READ = 2

REGISTER_COUNT = 256
REGISTER_WIDTH_BITS = 24           # REG_WR_DATA[23:0] in Figure 8


@dataclass
class RegisterWrite:
    """One decoded register write: (address, 24-bit value)."""

    address: int
    value: int


class GenericLayerController:
    """Register file + memory + application handlers for one node.

    Incoming messages are dispatched on the FU-ID of the address they
    were sent to.  Application code may claim any FU-ID >= 3 with
    :meth:`register_handler`, or observe everything via ``on_message``.
    """

    def __init__(self, memory_words: int = 1024):
        self.registers: List[int] = [0] * REGISTER_COUNT
        self.memory: List[int] = [0] * memory_words
        self.inbox: List[ReceivedMessage] = []
        self.register_writes: List[RegisterWrite] = []
        self.malformed: List[ReceivedMessage] = []
        self.on_message: Optional[Callable[[ReceivedMessage], None]] = None
        self._handlers: Dict[int, Callable[[ReceivedMessage], None]] = {}
        self._broadcast_handlers: Dict[int, Callable[[ReceivedMessage], None]] = {}

    # -- application hooks ----------------------------------------------------
    def register_handler(
        self, fu_id: int, handler: Callable[[ReceivedMessage], None]
    ) -> None:
        """Claim a functional unit for an application handler."""
        if fu_id in (FU_REGISTER, FU_MEMORY_WRITE, FU_MEMORY_READ):
            raise ProtocolError(f"FU-ID {fu_id} is reserved by the layer controller")
        self._handlers[fu_id] = handler

    def register_broadcast_handler(
        self, channel: int, handler: Callable[[ReceivedMessage], None]
    ) -> None:
        """Claim a broadcast channel (a separate namespace from
        unicast FU-IDs: broadcast messages repurpose the FU-ID field
        as a channel identifier, Section 4.6)."""
        self._broadcast_handlers[channel] = handler

    # -- delivery ---------------------------------------------------------------
    def deliver(self, message: ReceivedMessage) -> None:
        """Called by the bus controller when a message completes."""
        self.inbox.append(message)
        fu_id = message.dest.fu_id
        if not message.broadcast:
            # A real chip does not crash on a malformed frame; it
            # records the fault and drops the payload.
            try:
                if fu_id == FU_REGISTER:
                    self._apply_register_writes(message.payload)
                elif fu_id == FU_MEMORY_WRITE:
                    self._apply_memory_write(message.payload)
                elif fu_id in self._handlers:
                    self._handlers[fu_id](message)
            except ProtocolError:
                self.malformed.append(message)
        elif fu_id in self._broadcast_handlers:
            self._broadcast_handlers[fu_id](message)
        if self.on_message is not None:
            self.on_message(message)

    # -- register interface -----------------------------------------------------
    def _apply_register_writes(self, payload: bytes) -> None:
        """Payload format: repeated 4-byte records [addr, d23:16, d15:8, d7:0]."""
        if len(payload) % 4 != 0:
            raise ProtocolError("register-write payload must be 4-byte records")
        for i in range(0, len(payload), 4):
            addr = payload[i]
            value = int.from_bytes(payload[i + 1 : i + 4], "big")
            self.registers[addr] = value
            self.register_writes.append(RegisterWrite(addr, value))

    # -- memory interface ---------------------------------------------------------
    def _apply_memory_write(self, payload: bytes) -> None:
        """Payload format: 4-byte word address then 32-bit big-endian words."""
        if len(payload) < 4 or (len(payload) - 4) % 4 != 0:
            raise ProtocolError("memory-write payload must be addr + whole words")
        addr = int.from_bytes(payload[:4], "big")
        words = [
            int.from_bytes(payload[i : i + 4], "big")
            for i in range(4, len(payload), 4)
        ]
        if addr + len(words) > len(self.memory):
            raise ProtocolError(
                f"memory write at {addr} for {len(words)} words overruns "
                f"{len(self.memory)}-word memory"
            )
        for offset, word in enumerate(words):
            self.memory[addr + offset] = word

    def read_memory(self, addr: int, n_words: int) -> List[int]:
        if addr + n_words > len(self.memory):
            raise ProtocolError("memory read out of range")
        return self.memory[addr : addr + n_words]
