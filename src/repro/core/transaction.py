"""Analytic transaction model: the paper's closed forms.

Section 6.1 gives MBus's length-independent overhead (19 or 43 cycles)
and Section 6.2 the per-message energy estimate::

    E_message = [3.5 pJ * ({19 or 43} + 8 * n_bytes)] * n_chips

This module implements those forms plus latency and bus-utilisation
arithmetic.  The edge-accurate simulator is cross-validated against
this model by the test suite; benchmarks use this model for wide
parameter sweeps where simulating every edge would be wasteful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core import constants


@dataclass(frozen=True)
class TransactionCost:
    """Cycle/time/energy cost of one MBus transaction."""

    n_bytes: int
    full_address: bool
    n_chips: int
    clock_hz: float
    overhead_cycles: int
    data_cycles: int
    energy_pj: float

    @property
    def total_cycles(self) -> int:
        return self.overhead_cycles + self.data_cycles

    @property
    def duration_s(self) -> float:
        return self.total_cycles / self.clock_hz

    @property
    def overhead_bits(self) -> int:
        """Protocol bits added on top of payload bits (Figure 10)."""
        return self.overhead_cycles

    @property
    def goodput_bits(self) -> int:
        return 8 * self.n_bytes

    @property
    def energy_per_goodput_bit_pj(self) -> float:
        """Energy amortised over actual data bits (Figure 11b)."""
        if self.n_bytes == 0:
            return float("inf")
        return self.energy_pj / self.goodput_bits


class TransactionModel:
    """Closed-form model of MBus transaction cost.

    Parameters
    ----------
    clock_hz:
        Bus clock frequency (default 400 kHz, the systems' default).
    energy_per_bit_per_chip_pj:
        Per-cycle, per-chip switching energy.  The paper's PrimeTime
        simulation gives 3.5 pJ/bit/chip (Section 6.2); pass a
        measured-mode value from :mod:`repro.power` to model real
        hardware instead.
    """

    def __init__(
        self,
        clock_hz: float = constants.DEFAULT_CLOCK_HZ,
        energy_per_bit_per_chip_pj: float = 3.5,
    ):
        if clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        self.clock_hz = clock_hz
        self.energy_per_bit_per_chip_pj = energy_per_bit_per_chip_pj
        self.overheads = constants.ProtocolOverheads()

    # -- cycle arithmetic ---------------------------------------------------
    def overhead_cycles(self, full_address: bool = False) -> int:
        """19 cycles short-addressed, 43 full-addressed (Section 6.1)."""
        return self.overheads.total(full_address)

    def data_cycles(self, n_bytes: int) -> int:
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        return 8 * n_bytes

    def total_cycles(self, n_bytes: int, full_address: bool = False) -> int:
        return self.overhead_cycles(full_address) + self.data_cycles(n_bytes)

    # -- energy (Section 6.2) -------------------------------------------------
    def message_energy_pj(
        self, n_bytes: int, n_chips: int, full_address: bool = False
    ) -> float:
        """E = e_bit * (overhead + 8 n) * n_chips."""
        if n_chips < 2:
            raise ValueError("a transaction involves at least two chips")
        cycles = self.total_cycles(n_bytes, full_address)
        return self.energy_per_bit_per_chip_pj * cycles * n_chips

    # -- time ----------------------------------------------------------------
    def message_duration_s(self, n_bytes: int, full_address: bool = False) -> float:
        return self.total_cycles(n_bytes, full_address) / self.clock_hz

    def transactions_per_second(
        self, n_bytes: int, full_address: bool = False
    ) -> float:
        """Saturating transaction rate (Figure 14)."""
        return self.clock_hz / self.total_cycles(n_bytes, full_address)

    def bus_utilization(
        self,
        n_bytes_sequence: Iterable[int],
        period_s: float,
        full_address: bool = False,
    ) -> float:
        """Fraction of bus time used by the given messages per period.

        Reproduces Section 6.3.1's 0.0022% figure for the temperature
        sensor's request/response pair every 15 s at 400 kHz.
        """
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        busy = sum(
            self.message_duration_s(n, full_address) for n in n_bytes_sequence
        )
        return busy / period_s

    # -- convenience ----------------------------------------------------------
    def cost(
        self, n_bytes: int, n_chips: int = 2, full_address: bool = False
    ) -> TransactionCost:
        """Bundle every cost metric for one transaction."""
        return TransactionCost(
            n_bytes=n_bytes,
            full_address=full_address,
            n_chips=n_chips,
            clock_hz=self.clock_hz,
            overhead_cycles=self.overhead_cycles(full_address),
            data_cycles=self.data_cycles(n_bytes),
            energy_pj=self.message_energy_pj(n_bytes, n_chips, full_address),
        )


def fragmentation_overhead_bits(
    total_bytes: int, fragment_bytes: int, full_address: bool = False
) -> int:
    """Protocol bits for a payload split into fragments (Section 6.3.2).

    Sending a 28.8 kB image as 160 x 180-byte rows costs
    160 * 19 = 3,040 overhead bits versus 19 bits for one message —
    an extra 3,021 bits, or 1.31 % of the image.
    """
    if fragment_bytes <= 0:
        raise ValueError("fragment_bytes must be positive")
    model = TransactionModel()
    n_messages = -(-total_bytes // fragment_bytes)  # ceil division
    return n_messages * model.overhead_cycles(full_address)
