"""Bus controller: the member-node protocol engine (Figures 3, 5, 7).

This is the "red" power domain of Figure 8 — powered during MBus
transactions, gated otherwise.  One engine instance drives a node
through the full transaction life cycle:

    idle -> arbitration -> priority arbitration -> reserved ->
    addressing -> data -> interjection -> control -> idle

Edge conventions (Section 4.8): transmitters drive DATA on the falling
edge of CLK, receivers latch DATA on the rising edge.  Cycle numbering
used throughout (counting the mediator-generated edges from idle):

    falling #1  (f0)   clock starts
    rising  #1         arbitration latch   -- requesters sample DATAIN
    rising  #2         priority latch      -- winner/priority resolve
    rising  #3         reserved
    rising  #4 ..      address bits, MSB first (8 or 32)
    rising  #4+A ..    data bits
    (transmitter holds CLK -> interjection -> control: 2 bits + idle)
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional

from repro.core import constants
from repro.core.addresses import Address
from repro.core.errors import ProtocolError
from repro.core.messages import (
    ControlCode,
    Message,
    ReceivedMessage,
    bits_to_bytes,
)
from repro.core.wire_controller import LineController
from repro.sim.scheduler import Simulator
from repro.sim.signals import EdgeType, Net


class Phase(enum.Enum):
    IDLE = "idle"
    ARBITRATION = "arbitration"
    PRIORITY = "priority"
    RESERVED = "reserved"
    TRANSFER = "transfer"      # addressing + data
    CONTROL = "control"        # post-interjection


class Role(enum.Enum):
    NONE = "none"              # forwarding observer
    REQUESTER = "requester"    # pulled DATA low, awaiting arbitration
    PRIO_REQUESTER = "prio"    # lost arbitration, contesting priority slot
    TX = "tx"
    RX = "rx"
    IGNORE = "ignore"          # address did not match; forward and ignore


@dataclass
class TxOutcome:
    """Result reported to the node when one of its messages finishes."""

    message: Message
    control: Optional[ControlCode]
    success: bool
    detail: str = ""
    #: Payload bytes known to have been driven before the transaction
    #: ended.  On success this equals the payload length; after an
    #: abort it is the resume point (Section 7: "both TX and RX nodes
    #: know how far through a message they were").
    bytes_sent: int = 0


@dataclass
class EngineHooks:
    """Callbacks the node shell wires into the engine."""

    on_tx_done: Callable[[TxOutcome], None]
    on_rx_done: Callable[[ReceivedMessage], None]
    on_address_match: Callable[[Address], None]       # arm layer wakeup
    on_transaction_end: Callable[[ControlCode], None]
    is_powered: Callable[[], bool]                    # bus domain state
    #: Mediator-member nodes cannot hold their own CLK; they ask the
    #: co-located mediator logic to run the interjection sequence.
    request_mediator_interjection: Optional[Callable[[], None]] = None


@dataclass
class EngineConfig:
    """Per-node protocol configuration."""

    name: str
    short_prefix: Optional[int] = None
    full_prefix: Optional[int] = None
    broadcast_channels: frozenset = frozenset({0})
    rx_buffer_bytes: int = constants.MIN_MAX_MESSAGE_BYTES
    ack_policy: Callable[[bytes], bool] = None        # None -> always ACK
    is_mediator_member: bool = False                  # wins arbitration by fiat


class MemberEngine:
    """Protocol FSM for one member node.

    The engine never touches the simulator clock itself; it reacts to
    edges on its CLK-in pad, values on its DATA-in pad, and the
    interjection detector, and it actuates the node's two
    :class:`~repro.core.wire_controller.LineController` instances.
    """

    def __init__(
        self,
        sim: Simulator,
        config: EngineConfig,
        data_ctl: LineController,
        clk_ctl: LineController,
        data_in: Net,
        hooks: EngineHooks,
    ):
        self.sim = sim
        self.config = config
        self.data_ctl = data_ctl
        self.clk_ctl = clk_ctl
        self.data_in = data_in
        self.hooks = hooks

        self.phase = Phase.IDLE
        self.role = Role.NONE
        self.pending: Deque[Message] = deque()

        # Mutable arbitration priority (Section 7): when this node is
        # the arbitration anchor it — not the mediator — breaks the
        # DATA ring during arbitration, so topological priority is
        # measured from it.  The paper notes this "would require
        # adding state to the always-on Wire Controller"; these two
        # flags are that state.
        self.is_arbitration_anchor = False
        self.mediator_drives_request = True   # mediator-member default
        self._anchor_driving = False
        self._anchor_general = False

        # Edge counters since transaction start (maintained even while
        # the bus domain is gated: in silicon this is the always-on
        # sleep-controller counter that re-synchronises the woken
        # controller with the protocol position).
        self.rising = 0
        self.falling = 0

        # Transmit state.
        self._tx_message: Optional[Message] = None
        self._tx_stream: tuple = ()
        self._tx_bits_driven = 0
        self._eom_requested = False

        # Receive state.
        self._rx_bits: List[int] = []
        self._collecting = False
        self._full_address_mode = False
        self._matched: Optional[Address] = None
        self._overrun = False

        # Interjection / control state.
        self._i_requested = False
        self._abort = False
        self._interject_pending_reason: Optional[str] = None
        self._ctl_rising = 0
        self._ctl_falling = 0
        self._ctl_bits: List[int] = []

        # Line-mode changes decided at a rising (latch) edge are
        # deferred to the next falling edge, as in the synchronous
        # RTL: changing the DATA mux at a latch edge could corrupt the
        # sample of a node further around the ring whose clock edge
        # arrives a propagation delay later.
        self._deferred_line_actions: List[Callable[[], None]] = []

        # Statistics (consumed by the power model and tests).
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # Public API used by the node shell / system.
    # ------------------------------------------------------------------
    def queue_message(self, message: Message) -> None:
        self.pending.append(message)

    @property
    def busy(self) -> bool:
        return self.phase is not Phase.IDLE

    @property
    def has_pending(self) -> bool:
        return bool(self.pending)

    def request_bus(self) -> bool:
        """Pull DATA low to begin arbitration (Section 4.3).

        Returns False if the engine is not in a position to request
        (no pending message, or a transaction is already in flight).
        A node may still join an arbitration another node started as
        long as the mediator has not begun clocking — in hardware the
        request window stays open until the arbitration latch.
        """
        if not self.pending or not self.hooks.is_powered():
            return False
        joinable = (
            self.phase is Phase.ARBITRATION
            and self.role is Role.NONE
            and self.rising == 0
            and self.falling == 0
        )
        if self.phase is Phase.IDLE:
            self._begin_transaction()
        elif not joinable:
            return False
        self.role = Role.REQUESTER
        self._tx_message = self.pending[0]
        if not (self.config.is_mediator_member and self.mediator_drives_request):
            self.data_ctl.drive(0)
        self.stats.bus_requests += 1
        return True


    def power_loss_reset(self) -> None:
        """Bus-domain collapse: all transaction state is lost.

        The edge counters survive — they are the always-on
        sleep-controller counters that re-synchronise a re-woken
        controller with the protocol position (see the class note) —
        as does the pending queue (retained layer memory), so an
        interrupted message is retransmitted once the node re-wakes.
        The node rides out the rest of the transaction as a passive
        forwarder and resets normally at its end.
        """
        if self.role is Role.TX or self.role is Role.RX:
            self.stats.power_loss_resets += 1
        self.role = Role.NONE
        self._tx_message = None
        self._tx_stream = ()
        self._tx_bits_driven = 0
        self._eom_requested = False
        self._rx_bits = []
        self._collecting = False
        self._matched = None
        self._overrun = False
        self._i_requested = False
        self._abort = False
        self._interject_pending_reason = None
        self._anchor_driving = False
        self._anchor_general = False
        self._deferred_line_actions = []

    def request_interjection(self, reason: str = "third-party") -> None:
        """Ask to kill the in-flight transaction (Section 4.9).

        Honours the minimum-progress policy of Section 7: the request
        is deferred until the winner has moved at least four payload
        bytes (or the message ends first).
        """
        if self.phase is not Phase.TRANSFER:
            raise ProtocolError("can only interject during a transfer")
        self._interject_pending_reason = reason

    # ------------------------------------------------------------------
    # Transaction-boundary helpers.
    # ------------------------------------------------------------------
    def _begin_transaction(self) -> None:
        self.phase = Phase.ARBITRATION
        self.rising = 0
        self.falling = 0
        self._rx_bits = []
        self._collecting = False
        self._full_address_mode = False
        self._matched = None
        self._overrun = False
        self._tx_bits_driven = 0
        self._anchor_driving = False
        self._anchor_general = False
        self._i_requested = False
        self._abort = False
        self._eom_requested = False
        self._interject_pending_reason = None
        self._ctl_rising = 0
        self._ctl_falling = 0
        self._ctl_bits = []
        self._deferred_line_actions = []

    def observe_transaction_start(self) -> None:
        """Called when the node sees bus activity it did not initiate."""
        if self.phase is Phase.IDLE:
            self._begin_transaction()
            self.role = Role.NONE

    # ------------------------------------------------------------------
    # Edge handlers (invoked by the node shell on CLK-in transitions).
    # ------------------------------------------------------------------
    def on_clk_edge(self, edge: EdgeType) -> None:
        # Hot path: one call per node per clock edge.  EdgeType is an
        # IntEnum (FALLING == 0), so dispatch on the int value instead
        # of Enum identity.
        if self.phase is Phase.IDLE:
            # A clock edge while idle means a transaction started that
            # we have not yet noticed via DATA (we sit between the
            # mediator and the requester).
            self.observe_transaction_start()
        if self.phase is Phase.CONTROL:
            if edge == 0:
                self._ctl_falling += 1
                self._control_falling(self._ctl_falling)
            else:
                self._ctl_rising += 1
                self._control_rising(self._ctl_rising)
            return
        if edge == 0:
            self.falling += 1
            self._on_falling(self.falling)
        else:
            self.rising += 1
            self._on_rising(self.rising)

    def on_data_falling_idle(self) -> None:
        """DATA-in fell while the bus was idle: someone is arbitrating."""
        self.observe_transaction_start()

    def on_interjection_detected(self) -> None:
        """The saturating counter fired: enter control mode (4.9)."""
        if self.phase in (Phase.IDLE, Phase.CONTROL):
            return
        self.stats.interjections_seen += 1
        # Everyone resumes forwarding both lines so the mediator's
        # DATA toggles and the control bits can circulate.  On the
        # mediator node the co-located mediator logic owns the lines.
        if not self.config.is_mediator_member:
            self.clk_ctl.forward()
            self.data_ctl.forward()
        if self.role is Role.RX:
            # Discard non-byte-aligned bits (Figure 7, note 4).
            overflow = len(self._rx_bits) % 8
            if overflow:
                self._rx_bits = self._rx_bits[:-overflow]
                self.stats.bits_discarded += overflow
        self.phase = Phase.CONTROL
        self._ctl_rising = 0
        self._ctl_falling = 0
        self._ctl_bits = []

    # ------------------------------------------------------------------
    # Falling edges: drive slots.
    # ------------------------------------------------------------------
    def _on_falling(self, f: int) -> None:
        # Falling #1 is the clock-start edge (f0); falling #2 lies
        # between the arbitration and priority latches and is the
        # priority drive slot; falling #4 onward carry address/data
        # bits (bit i is driven at falling #(4+i), latched at rising
        # #(4+i)).
        self._run_deferred_line_actions()
        if not self.hooks.is_powered():
            return
        if (
            f == 1
            and self.is_arbitration_anchor
            and self.role is Role.NONE
            and not self._anchor_driving
        ):
            # Anchor duty: break the DATA ring once the clock starts.
            # Breaking earlier (at the request's falling edge) would
            # swallow requests before the mediator could see them.
            self._anchor_driving = True
            self.data_ctl.drive(1)
            return
        if f == 2 and self._anchor_driving:
            # The anchor resumes forwarding after the arbitration
            # latch so priority requests can cross it (cf. the
            # mediator's behaviour in Figure 5).
            self._anchor_driving = False
            self.data_ctl.forward()
        if f == 2 and self.role is Role.PRIO_REQUESTER:
            # Priority drive slot: pull DATA high (Section 4.3).
            self.data_ctl.drive(1)
            return
        if self.role is Role.TX and f >= 4:
            index = f - 4
            if index < len(self._tx_stream):
                self.data_ctl.drive(self._tx_stream[index])
                self.stats.bits_driven += 1
                self._tx_bits_driven += 1

    # ------------------------------------------------------------------
    # Rising edges: latch slots.
    # ------------------------------------------------------------------
    def _on_rising(self, r: int) -> None:
        if r == 1:
            self._arbitration_latch()
        elif r == 2:
            self._priority_latch()
        elif r == 3:
            self.phase = Phase.TRANSFER
            self._collecting = self.role is not Role.TX
        elif r >= 4:
            self._transfer_latch(r)

    def _run_deferred_line_actions(self) -> None:
        actions, self._deferred_line_actions = self._deferred_line_actions, []
        for action in actions:
            action()

    def _defer(self, action: Callable[[], None]) -> None:
        self._deferred_line_actions.append(action)

    def _arbitration_latch(self) -> None:
        self.phase = Phase.PRIORITY
        if self._anchor_driving and self.role is Role.NONE:
            # Anchor duty includes the mediator's no-winner check: an
            # idle-high DATA-in at the latch means a null transaction.
            if self.data_in.value == 1:
                self._anchor_general = True
                self._i_requested = True
                self._hold_clock()
            return
        if self.role is not Role.REQUESTER:
            return
        if not self.hooks.is_powered():
            self.role = Role.NONE
            return
        won = (
            (self.config.is_mediator_member and self.mediator_drives_request)
            or self.is_arbitration_anchor
            or self.data_in.value == 1
        )
        if won:
            self.stats.arbitrations_won += 1
            return  # stay in REQUESTER role; confirmed at priority latch
        self.stats.arbitrations_lost += 1
        if self._tx_message is not None and self._tx_message.priority:
            # Keep driving 0 until the priority drive slot (next
            # falling edge), where _on_falling drives DATA high.
            self.role = Role.PRIO_REQUESTER
        else:
            self.role = Role.NONE
            self._tx_message = None
            self._defer(self.data_ctl.forward)

    def _priority_latch(self) -> None:
        self.phase = Phase.RESERVED
        if self.role is Role.REQUESTER:
            if self.data_in.value == 1:
                # A priority request exists somewhere: back off (Fig. 5).
                self.stats.priority_preemptions += 1
                self.role = Role.NONE
                self._tx_message = None
                self._defer(self.data_ctl.forward)
            else:
                self._become_transmitter()
        elif self.role is Role.PRIO_REQUESTER:
            if self.data_in.value == 0:
                self.stats.priority_wins += 1
                self._become_transmitter()
            else:
                self.role = Role.NONE
                self._tx_message = None
                self._defer(self.data_ctl.forward)

    def _become_transmitter(self) -> None:
        self.role = Role.TX
        message = self._tx_message
        assert message is not None
        self._tx_stream = message.address_bits() + message.data_bits()
        # Hold the line low through the reserved cycle; the first
        # address bit goes out at falling edge #4.  The drive itself
        # waits for the next falling edge so that nodes still latching
        # the priority slot are not disturbed.
        self._defer(lambda: self.data_ctl.drive(0))

    # -- addressing and data -------------------------------------------------
    def _transfer_latch(self, r: int) -> None:
        index = r - 4
        if self.role is Role.TX:
            if index + 1 >= len(self._tx_stream) and not self._i_requested:
                # Final bit latched: request interjection by holding
                # CLK high (Section 4.9).
                self._eom_requested = True
                self._i_requested = True
                self._hold_clock()
                self.stats.eom_interjections += 1
            return
        if not self.hooks.is_powered():
            return
        # Third-party interjections (a forwarder with a latency-
        # sensitive message) are serviced even when not collecting.
        self._maybe_service_interject_request()
        if not self._collecting:
            return
        self._rx_bits.append(self.data_in.value)
        self.stats.bits_latched += 1
        self._after_bit_latched(len(self._rx_bits))
        self._maybe_service_interject_request()

    def _after_bit_latched(self, n_bits: int) -> None:
        if self._matched is None:
            self._match_address(n_bits)
            return
        if self.role is Role.RX:
            addr_bits = self._matched.n_bits
            data_bits = n_bits - addr_bits
            if data_bits > 0 and data_bits % 8 == 0:
                n_bytes = data_bits // 8
                if n_bytes > self.config.rx_buffer_bytes:
                    self._overrun = True
                    self._request_abort("rx-buffer-overrun")

    def _match_address(self, n_bits: int) -> None:
        if n_bits == constants.SHORT_ADDR_BITS:
            prefix = self._bits_value(0, 4)
            if prefix == constants.FULL_ADDR_MARKER_VALUE:
                self._full_address_mode = True
                return
            address = Address.decode(
                self._bits_value(0, 8), constants.SHORT_ADDR_BITS
            )
            self._resolve_match(address)
        elif self._full_address_mode and n_bits == constants.FULL_ADDR_BITS:
            address = Address.decode(
                self._bits_value(0, 32), constants.FULL_ADDR_BITS
            )
            self._resolve_match(address)

    def _resolve_match(self, address: Address) -> bool:
        matched = address.matches(
            self.config.short_prefix,
            self.config.full_prefix,
            self.config.broadcast_channels,
        )
        if matched:
            self.role = Role.RX
            self._matched = address
            self.stats.address_matches += 1
            self.hooks.on_address_match(address)
        else:
            self.role = Role.IGNORE
            self._collecting = False
            self._rx_bits = []
        return matched

    def _bits_value(self, start: int, length: int) -> int:
        value = 0
        for bit in self._rx_bits[start : start + length]:
            value = (value << 1) | bit
        return value

    # -- abort / third-party interjection ----------------------------------------
    def _request_abort(self, reason: str) -> None:
        self._interject_pending_reason = reason
        self._abort = True
        self._maybe_service_interject_request()

    def _maybe_service_interject_request(self) -> None:
        if self._interject_pending_reason is None or self._i_requested:
            return
        if not self._minimum_progress_met():
            return
        self._i_requested = True
        if self._interject_pending_reason != "rx-buffer-overrun":
            self._abort = True
        self._hold_clock()
        self.stats.abort_interjections += 1

    def _hold_clock(self) -> None:
        """Request an interjection: stop forwarding CLK (hold high)."""
        if self.config.is_mediator_member:
            if self.hooks.request_mediator_interjection is not None:
                self.hooks.request_mediator_interjection()
        else:
            self.clk_ctl.hold()

    def _minimum_progress_met(self) -> bool:
        """Section 7: the winner may send >= 4 bytes before interruption.

        Progress is derived from the latch-edge count so that even a
        non-collecting forwarder can honour the policy.
        """
        addr_bits = (
            constants.FULL_ADDR_BITS
            if self._full_address_mode
            else constants.SHORT_ADDR_BITS
        )
        data_bits = max(0, self.rising - 3 - addr_bits)
        return data_bits >= 8 * constants.MIN_PROGRESS_BYTES

    # ------------------------------------------------------------------
    # Control phase (two bits + return to idle).
    # ------------------------------------------------------------------
    def _control_falling(self, slot: int) -> None:
        if not self.hooks.is_powered():
            return
        if self._anchor_general:
            # Anchor-raised general error: the anchor drives the
            # (0, 0) code the mediator would drive in the default
            # priority scheme (Figure 6), then releases the line.
            if slot in (1, 2):
                self.data_ctl.drive(0)
            else:
                self.data_ctl.forward()
            return
        if slot == 1:
            if self._i_requested and self._eom_requested:
                self.data_ctl.drive(1)       # complete message (Fig. 7)
            elif self._i_requested and self._abort:
                self.data_ctl.drive(0)       # incomplete: abort
        elif slot == 2:
            if self._i_requested:
                self.data_ctl.forward()
            if self.role is Role.RX:
                self.data_ctl.drive(self._ack_bit())
        elif slot == 3:
            if not self.config.is_mediator_member:
                self.data_ctl.forward()

    def _ack_bit(self) -> int:
        """0 = ACK, 1 = NAK (Section 4.9 / Figure 7)."""
        if self._overrun or self._abort:
            return 1
        if self._ctl_bits and self._ctl_bits[0] == 0:
            # Control bit 0 low: the message did not complete (a
            # third-party interjection killed it) — never ACK.
            return 1
        if self.config.ack_policy is not None:
            payload = self._rx_payload()
            return 0 if self.config.ack_policy(payload) else 1
        return 0

    def _control_rising(self, slot: int) -> None:
        if slot in (1, 2):
            self._ctl_bits.append(self.data_in.value)
            if slot == 2 and self.role is Role.RX and not self._i_requested:
                # After latching its own ACK slot the receiver resumes
                # forwarding for the idle-return cycle.
                self.data_ctl.forward()
        elif slot == 3:
            self._finish_transaction()

    def _rx_payload(self) -> bytes:
        if self._matched is None:
            return b""
        addr_bits = self._matched.n_bits
        return bits_to_bytes(tuple(self._rx_bits[addr_bits:]))

    def _finish_transaction(self) -> None:
        code = self._latched_control_code()
        role = self.role
        if role is Role.TX and self._tx_message is not None:
            # A transmitter knows whether it reached its final state:
            # success requires both the latched EOM_ACK *and* having
            # requested the end-of-message interjection itself.  A
            # spurious interjection (e.g. a glitch storm saturating
            # the detectors mid-transfer) can forge plausible control
            # bits on the forwarding ring; without this guard the TX
            # would silently count a truncated message as delivered.
            success = code is ControlCode.EOM_ACK and self._eom_requested
            if success:
                bytes_sent = self._tx_message.n_bytes
            else:
                # Conservative resume point: the final driven bit may
                # never have been latched by the receiver.
                addr_bits = self._tx_message.dest.n_bits
                payload_bits = max(0, self._tx_bits_driven - addr_bits)
                bytes_sent = max(0, payload_bits // 8 - 1)
            if success and self.pending and self.pending[0] is self._tx_message:
                self.pending.popleft()
            elif not success and self.pending and self.pending[0] is self._tx_message:
                # Leave failed messages queued only for explicit retry
                # policies; default is to drop and report.
                self.pending.popleft()
            self.hooks.on_tx_done(
                TxOutcome(self._tx_message, code, success, bytes_sent=bytes_sent)
            )
        elif role is Role.RX and self.hooks.is_powered():
            payload = self._rx_payload()
            if code in (ControlCode.EOM_ACK, ControlCode.RX_ABORT):
                self.hooks.on_rx_done(
                    ReceivedMessage(
                        source_hint="",
                        dest=self._matched,
                        payload=payload,
                        broadcast=self._matched.is_broadcast,
                        control=code,
                        arrived_at_ps=self.sim.now,
                    )
                )
        # Reset to idle (the mediator logic restores its own lines).
        if not self.config.is_mediator_member:
            self.data_ctl.forward()
            self.clk_ctl.forward()
        self.phase = Phase.IDLE
        self.role = Role.NONE
        self._tx_message = None
        self._tx_stream = ()
        self.stats.transactions_observed += 1
        self.hooks.on_transaction_end(code)

    def _latched_control_code(self) -> ControlCode:
        if len(self._ctl_bits) != 2:
            # The node's bus domain was gated through control (it never
            # latched the bits); report a general error locally.
            return ControlCode.GENERAL_ERROR
        return ControlCode.from_bits(self._ctl_bits[0], self._ctl_bits[1])


@dataclass
class EngineStats:
    """Counters exposed for tests and the power model."""

    bus_requests: int = 0
    arbitrations_won: int = 0
    arbitrations_lost: int = 0
    priority_wins: int = 0
    priority_preemptions: int = 0
    address_matches: int = 0
    bits_driven: int = 0
    bits_latched: int = 0
    bits_discarded: int = 0
    eom_interjections: int = 0
    abort_interjections: int = 0
    interjections_seen: int = 0
    transactions_observed: int = 0
    power_loss_resets: int = 0
