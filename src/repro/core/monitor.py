"""Protocol conformance monitor: audit a simulated MBus system.

A passive checker that inspects a system after traffic has run and
verifies the invariants the specification promises.  Used by the test
suite as a belt-and-braces layer over scenario-specific assertions,
and available to library users debugging their own node behaviours.

Checked rules (with their provenance):

* **R1 idle-high** — in the idle state all nodes forward high CLK and
  DATA (Section 4.3): after quiescence every ring segment rests at 1
  and every controller is forwarding.
* **R2 engines-idle** — the bus cannot be left in a locked-up state
  (Section 3, fault tolerance).
* **R3 control-coverage** — every transaction the mediator clocked
  ended through exactly one interjection sequence followed by a
  complete 2-bit control phase (Section 4.9).
* **R4 cycle-arithmetic** — successful short/full-addressed
  transactions clock exactly 3 + {8|32} + 8n cycles (Section 6.1).
* **R5 byte-alignment** — receivers discard at most 7 bits per
  observed interjection (Section 4.9).
* **R6 wakeup-order** — every power-domain wakeup steps through
  power gate -> clock -> isolation -> reset, in order (Section 3).
* **R7 targeted-wakeup** — a node's layer wakes at most once per
  transaction that addressed it or interrupt it raised (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.bus import MBusSystem
from repro.core.bus_controller import Phase
from repro.core.constants import (
    ADDR_CYCLES_FULL,
    ADDR_CYCLES_SHORT,
    ARBITRATION_CYCLES,
    WAKEUP_STEPS,
)
from repro.core.errors import ProtocolError
from repro.core.mediator import MediatorPhase


@dataclass(frozen=True)
class Violation:
    """One detected protocol violation."""

    rule: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.subject}: {self.detail}"


class ProtocolMonitor:
    """Post-hoc conformance auditor for one :class:`MBusSystem`."""

    def __init__(self, system: MBusSystem):
        self.system = system

    # ------------------------------------------------------------------
    def audit(self) -> List[Violation]:
        """Run every rule; return all violations found."""
        violations: List[Violation] = []
        violations += self._rule_idle_high()
        violations += self._rule_engines_idle()
        violations += self._rule_control_coverage()
        violations += self._rule_cycle_arithmetic()
        violations += self._rule_byte_alignment()
        violations += self._rule_wakeup_order()
        violations += self._rule_targeted_wakeup()
        return violations

    def assert_clean(self) -> None:
        """Raise :class:`ProtocolError` listing any violations."""
        violations = self.audit()
        if violations:
            raise ProtocolError(
                "protocol violations detected:\n"
                + "\n".join(f"  {v}" for v in violations)
            )

    # ------------------------------------------------------------------
    # R1: idle lines rest high and forwarding.
    # ------------------------------------------------------------------
    def _rule_idle_high(self) -> List[Violation]:
        out = []
        for node in self.system.nodes:
            for net in (node.dout, node.clkout, node.din, node.clkin):
                if net is not None and net.value != 1:
                    out.append(
                        Violation("R1.idle-high", net.name, "rests low at idle")
                    )
            for name, ctl in (("data", node.data_ctl), ("clk", node.clk_ctl)):
                if ctl is not None and not ctl.forwarding:
                    out.append(
                        Violation(
                            "R1.idle-high",
                            f"{node.name}.{name}",
                            "not forwarding at idle",
                        )
                    )
        return out

    # ------------------------------------------------------------------
    # R2: no locked-up engines.
    # ------------------------------------------------------------------
    def _rule_engines_idle(self) -> List[Violation]:
        out = []
        for node in self.system.nodes:
            if node.engine.phase is not Phase.IDLE:
                out.append(
                    Violation(
                        "R2.engines-idle",
                        node.name,
                        f"engine stuck in {node.engine.phase.value}",
                    )
                )
        mediator = self.system.mediator.mediator
        if mediator.phase is not MediatorPhase.IDLE:
            out.append(
                Violation(
                    "R2.engines-idle",
                    "mediator",
                    f"mediator stuck in {mediator.phase.value}",
                )
            )
        return out

    # ------------------------------------------------------------------
    # R3: one interjection + complete control per transaction.
    # ------------------------------------------------------------------
    def _rule_control_coverage(self) -> List[Violation]:
        out = []
        stats = self.system.mediator.mediator.stats
        if stats.interjection_sequences != stats.transactions:
            out.append(
                Violation(
                    "R3.control-coverage",
                    "mediator",
                    f"{stats.transactions} transactions but "
                    f"{stats.interjection_sequences} interjection sequences",
                )
            )
        for result in self.system.transactions:
            if result.control_cycles != 3:
                out.append(
                    Violation(
                        "R3.control-coverage",
                        f"transaction {result.index}",
                        f"control phase ran {result.control_cycles} cycles",
                    )
                )
        return out

    # ------------------------------------------------------------------
    # R4: successful transactions clock 3 + addr + 8n cycles.
    # ------------------------------------------------------------------
    def _rule_cycle_arithmetic(self) -> List[Violation]:
        out = []
        for result in self.system.transactions:
            if not result.ok or result.message is None:
                continue
            addr = (
                ADDR_CYCLES_SHORT
                if result.message.dest.is_short
                else ADDR_CYCLES_FULL
            )
            expected = ARBITRATION_CYCLES + addr + 8 * result.message.n_bytes
            if result.clock_cycles != expected:
                out.append(
                    Violation(
                        "R4.cycle-arithmetic",
                        f"transaction {result.index}",
                        f"clocked {result.clock_cycles}, expected {expected}",
                    )
                )
        return out

    # ------------------------------------------------------------------
    # R5: receivers discard at most 7 bits per interjection.
    # ------------------------------------------------------------------
    def _rule_byte_alignment(self) -> List[Violation]:
        out = []
        for node in self.system.nodes:
            stats = node.engine.stats
            if stats.bits_discarded > 7 * max(stats.interjections_seen, 1):
                out.append(
                    Violation(
                        "R5.byte-alignment",
                        node.name,
                        f"discarded {stats.bits_discarded} bits over "
                        f"{stats.interjections_seen} interjections",
                    )
                )
            for message in node.inbox:
                if len(message.payload) * 8 % 8 != 0:   # defensive
                    out.append(
                        Violation(
                            "R5.byte-alignment",
                            node.name,
                            "delivered a non-byte payload",
                        )
                    )
        return out

    # ------------------------------------------------------------------
    # R6: wakeup sequences step in the canonical order.
    # ------------------------------------------------------------------
    def _rule_wakeup_order(self) -> List[Violation]:
        expected = [f"release_{step}" for step in WAKEUP_STEPS]
        out = []
        for node in self.system.nodes:
            for domain in (node.bus_domain, node.layer_domain):
                steps = [
                    e.action for e in domain.log if e.action.startswith("release")
                ]
                for start in range(0, len(steps), 4):
                    window = steps[start : start + 4]
                    if window != expected[: len(window)]:
                        out.append(
                            Violation(
                                "R6.wakeup-order",
                                domain.name,
                                f"sequence {window} out of order",
                            )
                        )
        return out

    # ------------------------------------------------------------------
    # R7: layers wake only when addressed or interrupted.
    # ------------------------------------------------------------------
    def _rule_targeted_wakeup(self) -> List[Violation]:
        out = []
        for node in self.system.nodes:
            if not node.config.power_gated:
                continue
            # Upper bound: deliveries + own transmissions + interrupts
            # (each may require one layer wakeup).
            budget = len(node.inbox) + len(node.results) + self._interrupts(node)
            if node.layer_domain.wake_count > budget:
                out.append(
                    Violation(
                        "R7.targeted-wakeup",
                        node.name,
                        f"layer woke {node.layer_domain.wake_count} times "
                        f"for {budget} addressed events",
                    )
                )
        return out

    @staticmethod
    def _interrupts(node) -> int:
        return sum(
            1
            for event in node.layer_domain.log
            if event.reason == "interrupt" and event.action == "on"
        )
