"""Wire controller: the always-on shoot-through forwarding element.

Section 4.1: with no local clock, the rings are "shoot-through" —
signals pass through only a minimal amount of combinational logic from
one node to the next.  Section 5 / Figure 8: the wire controller is one
of the always-powered green modules (7 gates, 0 flip-flops in the
paper's synthesis), a two-input mux per ring line:

    OUT = forwarding ? IN : driven_value

Switching between driving and forwarding may glitch the line
momentarily; the paper notes such glitches "are resolved before the
next rising clock edge" (Figure 5), which the event model reproduces
via transition superseding in :class:`repro.sim.signals.Net`.
"""

from __future__ import annotations

from repro.sim.signals import EdgeType, Net


class LineController:
    """Forward-or-drive control for one ring line (CLK or DATA).

    Parameters
    ----------
    in_net / out_net:
        The node's IN pad net and OUT pad net for this ring line.
    forward_delay_ps:
        Node-to-node propagation delay through the forwarding mux,
        pads, and bond wire (spec max 10 ns).
    drive_delay_ps:
        Pad driver delay when locally driving.
    """

    def __init__(
        self,
        in_net: Net,
        out_net: Net,
        forward_delay_ps: int,
        drive_delay_ps: int,
    ):
        self.in_net = in_net
        self.out_net = out_net
        self.forward_delay_ps = forward_delay_ps
        self.drive_delay_ps = drive_delay_ps
        self.forwarding = True
        self.driven_value = 1
        #: count of output transitions while driving vs forwarding —
        #: consumed by the activity-based power model.
        self.forward_transitions = 0
        self.drive_transitions = 0
        in_net.on_edge(self._on_input_edge)
        out_net.on_edge(self._on_output_edge)

    # -- event plumbing -------------------------------------------------------
    def _on_input_edge(self, net: Net, _edge: EdgeType) -> None:
        if self.forwarding:
            self.out_net.set(net.value, delay=self.forward_delay_ps)

    def _on_output_edge(self, _net: Net, _edge: EdgeType) -> None:
        if self.forwarding:
            self.forward_transitions += 1
        else:
            self.drive_transitions += 1

    # -- mode control -----------------------------------------------------------
    def forward(self) -> None:
        """Resume forwarding: output snaps to (delayed) input value."""
        self.forwarding = True
        self.out_net.set(self.in_net.value, delay=self.forward_delay_ps)

    def drive(self, value: int) -> None:
        """Break the ring and drive ``value`` onto the output."""
        self.forwarding = False
        self.driven_value = 1 if value else 0
        self.out_net.set(self.driven_value, delay=self.drive_delay_ps)

    def hold(self) -> None:
        """Break the ring, freezing the output at its current value.

        This is how a node requests an interjection on the CLK line:
        it simply stops forwarding while CLK is high (Section 4.9).
        """
        self.forwarding = False
        self.driven_value = self.out_net.value
