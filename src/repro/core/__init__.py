"""MBus core: the paper's primary contribution.

Two complementary models live here:

* An **edge-accurate model** (:class:`~repro.core.bus.MBusSystem`)
  built on :mod:`repro.sim`: every CLK/DATA transition of the two
  shoot-through rings is simulated, including arbitration, priority
  arbitration, hierarchical wakeup, interjection and control — the
  behaviour shown in Figures 3, 5, 6 and 7 of the paper.
* An **analytic transaction model**
  (:mod:`repro.core.transaction`) implementing the paper's closed
  forms — 19/43 + 8·n cycle counts and the per-message energy formula
  of Section 6.2 — used for the large parameter sweeps in the
  benchmark harness and cross-validated against the edge-accurate
  model by the test suite.
"""

from repro.core.addresses import (
    Address,
    BROADCAST_PREFIX,
    FULL_ADDR_MARKER,
    FullPrefix,
    ShortPrefix,
)
from repro.core.bus import MBusSystem, TransactionResult
from repro.core.constants import MBusTiming, ProtocolOverheads
from repro.core.errors import (
    AddressError,
    BusLockedError,
    ConfigurationError,
    MBusError,
    ProtocolError,
)
from repro.core.fairness import RotatingPriority, fairness_index
from repro.core.messages import ControlCode, Message
from repro.core.monitor import ProtocolMonitor, Violation
from repro.core.node import MBusNode, NodeConfig, PowerDomain
from repro.core.resumable import ResumableReceiver, ResumableSender
from repro.core.transaction import TransactionModel

__all__ = [
    "Address",
    "BROADCAST_PREFIX",
    "FULL_ADDR_MARKER",
    "FullPrefix",
    "ShortPrefix",
    "MBusSystem",
    "TransactionResult",
    "MBusTiming",
    "ProtocolOverheads",
    "MBusError",
    "AddressError",
    "ProtocolError",
    "BusLockedError",
    "ConfigurationError",
    "ControlCode",
    "Message",
    "MBusNode",
    "NodeConfig",
    "PowerDomain",
    "TransactionModel",
    "RotatingPriority",
    "fairness_index",
    "ProtocolMonitor",
    "Violation",
    "ResumableReceiver",
    "ResumableSender",
]
