"""Versioning for serialised experiment documents.

``REPORT_SCHEMA_VERSION`` stamps every persisted report document —
:meth:`repro.scenario.runner.RunReport.to_dict`,
:meth:`repro.faults.report.ReliabilityReport.to_dict` and the
content-addressed records in :class:`repro.campaign.ResultStore` — so
cached results written today remain identifiable (and loadable, via
the ``lenient`` mode of the ``from_dict``-style loaders) after the
schema grows new fields.

Bump the version when a field changes *meaning*; adding fields does
not require a bump, because loaders tolerate unknown keys in lenient
mode and queries address fields by name.
"""

REPORT_SCHEMA_VERSION = 1
