"""Interjection detection: DATA toggles while CLK is held high.

Section 4.9: "In normal MBus operation, DATA never toggles
meaningfully without a CLK edge.  This allows us to design a reliable,
independent interjection-detection module, essentially a saturating
counter clocked by DATA and reset by CLK."

The detector is part of a node's always-valid logic: it watches the
node's DATA-in and CLK-in pads, counts DATA transitions, resets the
count on any CLK transition, and fires a callback once the count
saturates at the detection threshold.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.constants import INTERJECTION_DETECT_TOGGLES
from repro.sim.signals import EdgeType, Net


class InterjectionDetector:
    """Saturating counter clocked by DATA, reset by CLK."""

    def __init__(
        self,
        data_in: Net,
        clk_in: Net,
        threshold: int = INTERJECTION_DETECT_TOGGLES,
        on_detect: Optional[Callable[[], None]] = None,
    ):
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.threshold = threshold
        self.on_detect = on_detect
        self.count = 0
        self.detections = 0
        self._armed = True
        data_in.on_edge(self._on_data_edge)
        clk_in.on_edge(self._on_clk_edge)

    def _on_data_edge(self, _net: Net, _edge: EdgeType) -> None:
        if self.count >= self.threshold:
            return  # saturated
        self.count += 1
        if self.count >= self.threshold and self._armed:
            self._armed = False
            self.detections += 1
            if self.on_detect is not None:
                self.on_detect()

    def _on_clk_edge(self, _net: Net, _edge: EdgeType) -> None:
        self.count = 0
        self._armed = True

    @property
    def detected(self) -> bool:
        """True while the counter is saturated (until the next CLK edge)."""
        return self.count >= self.threshold
