"""Parameter grids: the axes of a campaign.

A :class:`Grid` is a declarative description of a set of parameter
points (dicts).  Three primitive shapes compose into arbitrary
studies:

* ``Grid.product(a=[...], b=[...])`` — the cartesian product of its
  axes (the classic sweep; a plain ``{name: values}`` dict is
  accepted anywhere a grid is and means exactly this);
* ``Grid.zip(a=[...], b=[...])`` — axes advanced in lockstep (paired
  parameters, e.g. a payload length with its matching timeout);
* ``g1 + g2`` — chain: the points of ``g1`` followed by the points of
  ``g2`` (irregular studies, extra corner cases appended to a
  sweep);
* ``g1 * g2`` — cross: every point of ``g1`` combined with every
  point of ``g2`` (product of heterogeneous sub-grids).

Grids are frozen, deterministic (``points()`` always enumerates in
the same order) and JSON-round-trippable via :meth:`Grid.to_dict` /
:meth:`Grid.from_dict`, so a whole campaign — topology, traffic,
faults and axes — fits in one version-controlled document.

Axis names are either :class:`~repro.scenario.spec.SystemSpec` field
names (``clock_hz``, ``max_message_bytes``, ...), free parameters
consumed by workload/fault factories, or dotted document patches
(``workload.count``, ``faults.faults.0.rate_hz``,
``system.nodes.1.rx_buffer_bytes``) applied to the compiled trial
documents — see :meth:`repro.campaign.Campaign.trials`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Tuple, Union

from repro.core.errors import ConfigurationError

GRID_KINDS = ("product", "zip", "chain", "cross")

GridLike = Union["Grid", Mapping[str, Iterable[Any]]]


def _freeze_axes(axes: Mapping[str, Iterable[Any]]) -> Tuple:
    frozen = []
    for name, values in axes.items():
        if isinstance(values, (str, bytes)) or not isinstance(
            values, Iterable
        ):
            raise ConfigurationError(
                f"grid axis {name!r} needs an iterable of values, "
                f"got {values!r}"
            )
        frozen.append((name, tuple(values)))
    return tuple(frozen)


@dataclass(frozen=True)
class Grid:
    """A frozen, composable set of parameter points.

    Build via :meth:`product` / :meth:`zip` and compose with ``+``
    (chain) and ``*`` (cross); :meth:`points` enumerates the concrete
    parameter dicts in a deterministic order.
    """

    kind: str = "product"
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    parts: Tuple["Grid", ...] = ()

    # -- constructors ------------------------------------------------------
    @staticmethod
    def product(**axes: Iterable[Any]) -> "Grid":
        """Cartesian product of the named axes."""
        return Grid(kind="product", axes=_freeze_axes(axes))

    @staticmethod
    def zip(**axes: Iterable[Any]) -> "Grid":
        """Axes advanced in lockstep; all must have the same length."""
        grid = Grid(kind="zip", axes=_freeze_axes(axes))
        lengths = {name: len(values) for name, values in grid.axes}
        if len(set(lengths.values())) > 1:
            raise ConfigurationError(
                f"Grid.zip axes must have equal lengths, got {lengths}"
            )
        return grid

    @staticmethod
    def single(**params: Any) -> "Grid":
        """A one-point grid (handy as a chain/cross operand)."""
        return Grid(
            kind="zip",
            axes=tuple((name, (value,)) for name, value in params.items()),
        )

    # -- composition -------------------------------------------------------
    def __add__(self, other: "Grid") -> "Grid":
        other = as_grid(other)
        mine = self.parts if self.kind == "chain" else (self,)
        theirs = other.parts if other.kind == "chain" else (other,)
        return Grid(kind="chain", parts=mine + theirs)

    def __mul__(self, other: "Grid") -> "Grid":
        other = as_grid(other)
        mine = self.parts if self.kind == "cross" else (self,)
        theirs = other.parts if other.kind == "cross" else (other,)
        crossed = Grid(kind="cross", parts=mine + theirs)
        seen: Dict[str, int] = {}
        for index, part in enumerate(crossed.parts):
            for key in part.keys():
                if key in seen and seen[key] != index:
                    raise ConfigurationError(
                        f"cross grids share axis {key!r}; crossed "
                        "sub-grids must have disjoint parameter names"
                    )
                seen[key] = index
        return crossed

    # -- enumeration -------------------------------------------------------
    def keys(self) -> Tuple[str, ...]:
        """Every axis name this grid can set, in declaration order."""
        if self.kind in ("product", "zip"):
            return tuple(name for name, _ in self.axes)
        seen: List[str] = []
        for part in self.parts:
            for key in part.keys():
                if key not in seen:
                    seen.append(key)
        return tuple(seen)

    def points(self) -> List[Dict[str, Any]]:
        """The concrete parameter dicts, in deterministic order."""
        if self.kind == "product":
            names = [name for name, _ in self.axes]
            return [
                dict(zip(names, values))
                for values in itertools.product(
                    *(values for _, values in self.axes)
                )
            ]
        if self.kind == "zip":
            if not self.axes:
                return [{}]
            lengths = {len(values) for _, values in self.axes}
            if len(lengths) > 1:
                raise ConfigurationError(
                    "Grid.zip axes must have equal lengths"
                )
            n = lengths.pop()
            return [
                {name: values[i] for name, values in self.axes}
                for i in range(n)
            ]
        if self.kind == "chain":
            return [
                point for part in self.parts for point in part.points()
            ]
        if self.kind == "cross":
            points: List[Dict[str, Any]] = [{}]
            for part in self.parts:
                points = [
                    {**left, **right}
                    for left in points
                    for right in part.points()
                ]
            return points
        raise ConfigurationError(
            f"grid kind must be one of {GRID_KINDS}, not {self.kind!r}"
        )

    def __len__(self) -> int:
        return len(self.points())

    def __iter__(self):
        return iter(self.points())

    # -- serialisation -----------------------------------------------------
    def to_dict(self) -> Dict:
        if self.kind in ("product", "zip"):
            return {
                "kind": self.kind,
                "axes": {name: list(values) for name, values in self.axes},
            }
        return {
            "kind": self.kind,
            "parts": [part.to_dict() for part in self.parts],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Grid":
        kind = data.get("kind")
        if kind not in GRID_KINDS:
            raise ConfigurationError(
                f"grid kind must be one of {GRID_KINDS}, not {kind!r}"
            )
        unknown = set(data) - {"kind", "axes", "parts"}
        if unknown:
            raise ConfigurationError(
                f"unknown Grid key(s): {', '.join(sorted(unknown))}"
            )
        if kind == "zip":
            return Grid.zip(**dict(data.get("axes", {})))
        if kind == "product":
            return Grid(kind=kind, axes=_freeze_axes(data.get("axes", {})))
        parts = tuple(cls.from_dict(part) for part in data.get("parts", ()))
        grid = Grid(kind=kind, parts=parts)
        if kind == "cross" and parts:
            # Re-run the disjointness check composition enforces.
            rebuilt = parts[0]
            for part in parts[1:]:
                rebuilt = rebuilt * part
            return rebuilt
        return grid


def as_grid(source: GridLike) -> "Grid":
    """Coerce ``source`` to a :class:`Grid`.

    Accepts a :class:`Grid`, a grid document (a mapping with a
    ``"kind"`` entry naming one of :data:`GRID_KINDS`), or a plain
    ``{axis: values}`` mapping, which means :meth:`Grid.product` —
    the shape :func:`repro.scenario.runner.sweep` always took.
    """
    if isinstance(source, Grid):
        return source
    if isinstance(source, Mapping):
        if isinstance(source.get("kind"), str) and source["kind"] in GRID_KINDS:
            return Grid.from_dict(source)
        return Grid.product(**dict(source))
    raise ConfigurationError(
        f"expected a Grid or a {{axis: values}} mapping, got {source!r}"
    )
