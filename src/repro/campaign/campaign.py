"""The Campaign: a declarative, executable experiment study.

A :class:`Campaign` binds together everything one parameter study
needs — a base :class:`~repro.scenario.spec.SystemSpec`, a workload
(fixed :class:`~repro.scenario.workload.Workload` or a factory
``params -> Workload``), an optional fault set (fixed or factory),
and a :class:`~repro.campaign.grid.Grid` of parameter points — and
compiles it to an explicit list of content-addressed
:class:`~repro.campaign.trial.Trial` documents.

Grid axes are consumed, per point, in this order:

1. axes naming :class:`SystemSpec` fields (``clock_hz``,
   ``max_message_bytes``, ...) override the spec;
2. dotted axes patch the compiled documents in place:
   ``workload.<path>``, ``faults.<path>`` and ``system.<path>``
   (integer segments index lists, e.g.
   ``faults.faults.0.rate_hz``);
3. every axis is passed to callable workload/fault factories via the
   point's ``params`` dict;
4. a non-dotted, non-spec axis with *neither* factory present is a
   compile error — it would sweep nothing.

With ``seed=`` set, each point's params also gain a ``trial_seed``
(a pure function of campaign seed and point — see
:func:`~repro.campaign.trial.derive_trial_seed`), so randomised
workloads stay execution-order independent.

Execution (:meth:`Campaign.run`) is memoised through a
:class:`~repro.campaign.store.ResultStore`, *failure-isolating* (a
trial that raises, times out, or kills its worker becomes a
structured failure record — see :mod:`repro.campaign.failures` — and
the campaign keeps going) and pluggable:

* ``executor="serial"`` — in-process, in trial order; the only
  executor that can keep live reports (``keep_reports=True``) or
  carry code (``setup=`` hooks, ``trace=True`` — both bypass the
  store, because code is invisible to a content hash);
* ``executor="process"`` — the crash-isolating
  :class:`~repro.campaign.executors.ProcessPool`: trials cross the
  boundary as JSON documents and records come back, so results are
  identical to serial execution byte for byte; a worker that dies
  mid-trial is replaced and only its trial records ``crashed``.

Future sharded/async backends plug in at the same seam: a list of
:class:`Trial` documents in, records keyed by content hash out.
"""

from __future__ import annotations

import dataclasses
import json
import signal
import threading
import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.campaign.executors import ProcessPool, run_serial
from repro.campaign.failures import (
    RetryPolicy,
    normalize_retry,
    record_is_quarantined,
    record_outcome,
)
from repro.campaign.grid import Grid, GridLike, as_grid
from repro.campaign.resultset import ResultSet, TrialResult
from repro.campaign.store import ResultStore
from repro.campaign.trial import (
    Trial,
    derive_trial_seed,
    patch_document,
)
from repro.core.errors import ConfigurationError
from repro.faults.primitives import FaultSpec, normalize_faults
from repro.obs.state import OBS
from repro.scenario.runner import BACKENDS
from repro.scenario.spec import SystemSpec
from repro.scenario.workload import Workload, workload_from_dict

EXECUTORS = ("serial", "process")

StoreLike = Union[ResultStore, str, None]

#: progress callback: (completed_so_far, total_planned, latest_result)
ProgressCallback = Callable[[int, int, TrialResult], None]


def _as_store(store: StoreLike, readonly: bool = False) -> ResultStore:
    if store is None:
        return ResultStore.memory()
    if isinstance(store, ResultStore):
        return store
    return ResultStore(store, readonly=readonly)


@dataclass
class Campaign:
    """A declarative experiment study over a parameter grid."""

    spec: SystemSpec
    workload: Union[Workload, Callable[[Dict[str, Any]], Workload]]
    grid: Optional[GridLike] = None
    faults: Any = None
    backend: str = "auto"
    name: str = ""
    timeout_s: Optional[float] = None
    #: When set, injects a deterministic ``trial_seed`` into every
    #: point's params (for factories building seeded workloads).
    seed: Optional[int] = None
    #: Per-trial wall-clock budget (host seconds): the simulator
    #: raises :class:`~repro.core.errors.WallClockTimeout` past it,
    #: and the process executor SIGKILLs a worker that overshoots the
    #: hard deadline.  Execution policy — never part of trial keys.
    wall_timeout_s: Optional[float] = None
    #: Retry policy for failing trials: a
    #: :class:`~repro.campaign.failures.RetryPolicy`, a dict of its
    #: fields, or None for the defaults.
    retry: Any = None

    # ------------------------------------------------------------------
    # Compilation.
    # ------------------------------------------------------------------
    def _workload_is_factory(self) -> bool:
        return callable(self.workload) and not isinstance(
            self.workload, Workload
        )

    def _faults_is_factory(self) -> bool:
        return callable(self.faults) and not isinstance(
            self.faults, (FaultSpec,)
        )

    def trials(self) -> List[Trial]:
        """Compile the campaign to its explicit, ordered trial list."""
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, not {self.backend!r}"
            )
        grid = None if self.grid is None else as_grid(self.grid)
        points = [{}] if grid is None else grid.points()
        spec_fields = set(SystemSpec._KEYS) - {"nodes"}
        workload_factory = self._workload_is_factory()
        faults_factory = self._faults_is_factory()
        if not workload_factory and not isinstance(self.workload, Workload):
            raise ConfigurationError(
                "a campaign workload must be a Workload or a factory "
                f"params -> Workload, got {self.workload!r}"
            )
        trials: List[Trial] = []
        for index, point in enumerate(points):
            params = dict(point)
            if self.seed is not None:
                params["trial_seed"] = derive_trial_seed(self.seed, point)
            overrides = {
                k: v for k, v in params.items() if k in spec_fields
            }
            point_spec = (
                self.spec.replace(**overrides) if overrides else self.spec
            )
            point_spec.validate()
            spec_doc = point_spec.to_dict()

            workload = (
                self.workload(params) if workload_factory else self.workload
            )
            if not isinstance(workload, Workload):
                raise ConfigurationError(
                    "the workload factory must return a Workload, got "
                    f"{workload!r} for params {params!r}"
                )
            workload_doc = workload.to_dict()

            point_faults = (
                self.faults(params)
                if faults_factory
                else normalize_faults(self.faults)
            )
            if point_faults is not None and not isinstance(
                point_faults, FaultSpec
            ):
                point_faults = normalize_faults(point_faults)
            faults_doc = (
                None if point_faults is None else point_faults.to_dict()
            )

            patched_spec = False
            consumed = set(overrides)
            for key, value in params.items():
                root, dot, rest = key.partition(".")
                if not dot:
                    continue
                if root == "workload":
                    patch_document(workload_doc, rest, value, "workload")
                elif root == "faults":
                    if faults_doc is None:
                        raise ConfigurationError(
                            f"grid axis {key!r} patches the faults "
                            "document, but the campaign has no faults"
                        )
                    patch_document(faults_doc, rest, value, "faults")
                elif root == "system":
                    patch_document(spec_doc, rest, value, "system")
                    patched_spec = True
                else:
                    raise ConfigurationError(
                        f"dotted grid axis {key!r} must start with "
                        "'workload.', 'faults.' or 'system.'"
                    )
                consumed.add(key)
            if patched_spec:
                SystemSpec.from_dict(spec_doc).validate()

            leftover = [
                k
                for k in params
                if k not in consumed and k != "trial_seed"
            ]
            if leftover and not workload_factory and not faults_factory:
                raise ConfigurationError(
                    f"grid key(s) {leftover!r} are not SystemSpec fields "
                    "or document patches, and neither the workload nor "
                    "the faults argument is a factory; they would have "
                    "no effect"
                )

            trials.append(
                Trial(
                    index=index,
                    params=params,
                    spec_doc=spec_doc,
                    workload_doc=workload_doc,
                    faults_doc=faults_doc,
                    backend=self.backend,
                    timeout_s=self.timeout_s,
                    wall_timeout_s=self.wall_timeout_s,
                )
            )
        return trials

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run(
        self,
        executor: str = "serial",
        workers: Optional[int] = None,
        store: StoreLike = None,
        resume: bool = True,
        keep_reports: bool = False,
        setup: Optional[Callable] = None,
        trace: bool = False,
        order: Optional[Sequence[int]] = None,
        dedupe: bool = True,
        retry: Any = None,
        retry_failed: bool = False,
        retry_quarantined: bool = False,
        wall_timeout_s: Optional[float] = None,
        stop: Optional[threading.Event] = None,
        install_signal_handlers: bool = False,
        progress: Optional[ProgressCallback] = None,
    ) -> ResultSet:
        """Execute the campaign and return its :class:`ResultSet`.

        ``store`` — a :class:`ResultStore`, a directory path, or
        ``None`` for an in-memory scratch store.  ``resume=True``
        serves any trial whose key is already stored from cache —
        including stored *failures*: a failed trial is not re-executed
        unless ``retry_failed=True`` (or, for quarantined failures,
        ``retry_quarantined=True``).

        ``order`` — an optional permutation of trial indices fixing
        *execution* order (results always come back in trial order);
        the sharding hook, and the lever the determinism tests use.

        ``setup`` / ``trace`` carry code or need the live system, so
        they are serial-only and bypass the store entirely (a content
        hash cannot see a closure).  ``keep_reports=True`` (serial
        only) attaches each executed trial's live
        :class:`RunReport` as ``result.live``.

        ``dedupe=False`` re-executes trials whose documents are
        identical instead of aliasing them to one execution.

        ``retry`` / ``wall_timeout_s`` override the campaign-level
        fields for this run.  ``stop`` is an optional external stop
        event; ``install_signal_handlers=True`` (main thread only)
        wires SIGINT/SIGTERM to it, so an interrupted run checkpoints
        every completed trial and returns a partial, resumable
        :class:`ResultSet` with ``interrupted=True`` instead of dying
        mid-write.

        ``progress`` — an optional callback invoked as
        ``progress(done, total, result)`` each time a trial resolves
        (cache hit, fresh outcome, or alias), from the calling
        thread; the CLI's progress line rides on it.
        """
        if executor not in EXECUTORS:
            raise ConfigurationError(
                f"executor must be one of {EXECUTORS}, not {executor!r}"
            )
        code_bearing = setup is not None or trace
        if code_bearing and executor != "serial":
            raise ConfigurationError(
                "setup hooks and tracing are code, not data: they "
                "cannot cross process boundaries or be content-hashed; "
                "use executor='serial'"
            )
        if keep_reports and executor != "serial":
            raise ConfigurationError(
                "keep_reports needs the serial executor: live reports "
                "hold the simulator, which cannot cross processes"
            )
        start = time.perf_counter()
        policy = (
            normalize_retry(retry)
            or normalize_retry(self.retry)
            or RetryPolicy()
        )
        effective_wall = (
            self.wall_timeout_s if wall_timeout_s is None else wall_timeout_s
        )
        trials = self.trials()
        if wall_timeout_s is not None:
            trials = [
                dataclasses.replace(trial, wall_timeout_s=wall_timeout_s)
                for trial in trials
            ]
        if code_bearing:
            live_store = ResultStore.memory()
            resume = False
        else:
            live_store = _as_store(store)

        exec_order = list(range(len(trials)))
        if order is not None:
            order = list(order)
            if sorted(order) != exec_order:
                raise ConfigurationError(
                    "order must be a permutation of the trial indices "
                    f"0..{len(trials) - 1}"
                )
            exec_order = order

        total = len(trials)
        results: Dict[int, TrialResult] = {}

        def _resolved(result: TrialResult) -> None:
            results[result.trial.index] = result
            if progress is not None:
                progress(len(results), total, result)

        def _execute() -> ResultSet:
            pending: List[Trial] = []
            for index in exec_order:
                trial = trials[index]
                if resume:
                    record = live_store.get(trial.key)
                    if record is not None and not self._should_redo(
                        record, retry_failed, retry_quarantined
                    ):
                        if OBS.enabled:
                            OBS.metrics.inc("campaign.cache_hits")
                        _resolved(TrialResult(
                            trial=trial, record=record, cached=True
                        ))
                        continue
                pending.append(trial)

            # Within one run, identical documents mean identical
            # results: execute the first occurrence, alias the rest
            # (unless the caller asked for brute-force re-execution).
            to_execute: List[Trial] = []
            aliases: List[Trial] = []
            if dedupe:
                seen: Dict[str, Trial] = {}
                for trial in pending:
                    if trial.key in seen:
                        aliases.append(trial)
                    else:
                        seen[trial.key] = trial
                        to_execute.append(trial)
            else:
                to_execute = pending

            fresh: Dict[str, Dict] = {}

            def on_outcome(trial, record, wall_s, live_report):
                live_store.put(record)
                fresh[trial.key] = record
                if OBS.enabled:
                    OBS.metrics.inc(
                        "campaign.outcomes",
                        labels={"outcome": record_outcome(record)},
                    )
                    if record_is_quarantined(record):
                        OBS.metrics.inc("campaign.quarantined")
                _resolved(TrialResult(
                    trial=trial,
                    record=record,
                    cached=False,
                    wall_s=wall_s,
                    live=live_report if keep_reports else None,
                ))

            stop_event = stop or threading.Event()
            restore: List = []
            if (
                install_signal_handlers
                and threading.current_thread() is threading.main_thread()
            ):
                def _graceful(_signum, _frame):
                    stop_event.set()

                for signum in (signal.SIGINT, signal.SIGTERM):
                    restore.append(
                        (signum, signal.signal(signum, _graceful))
                    )
            interrupted = False
            try:
                if executor == "serial":
                    interrupted = run_serial(
                        to_execute,
                        on_outcome,
                        policy,
                        stop_event,
                        setup=setup,
                        trace=trace,
                    )
                elif to_execute:
                    pool = ProcessPool(
                        workers=workers,
                        policy=policy,
                        wall_timeout_s=effective_wall,
                    )
                    interrupted = pool.run(
                        to_execute, on_outcome, stop_event
                    )
            finally:
                for signum, previous in restore:
                    signal.signal(signum, previous)
            for trial in aliases:
                # An alias only resolves if its twin actually finished
                # (an interrupted run may have left it pending).
                if trial.key in fresh:
                    if OBS.enabled:
                        OBS.metrics.inc("campaign.aliases")
                    _resolved(TrialResult(
                        trial=trial, record=fresh[trial.key], cached=True
                    ))

            return ResultSet(
                [
                    results[index]
                    for index in range(len(trials))
                    if index in results
                ],
                executor=executor,
                wall_s=time.perf_counter() - start,
                name=self.name,
                interrupted=interrupted,
                planned=len(trials),
            )

        if not OBS.enabled:
            return _execute()
        OBS.metrics.inc("campaign.runs")
        OBS.metrics.set("campaign.trials_planned", total)
        tracer = OBS.tracer
        if tracer is None:
            return _execute()
        with tracer.span(
            "campaign",
            cat="campaign",
            label=self.name or "campaign",
            executor=executor,
            trials=total,
        ):
            return _execute()

    @staticmethod
    def _should_redo(
        record: Dict, retry_failed: bool, retry_quarantined: bool
    ) -> bool:
        """Resume policy: is this cached record stale enough to
        re-execute?  Successes never are; failures only on request,
        and quarantined failures only on *explicit* request."""
        if record_outcome(record) == "ok":
            return False
        if record_is_quarantined(record):
            return retry_quarantined
        return retry_failed or retry_quarantined

    # ------------------------------------------------------------------
    # Status.
    # ------------------------------------------------------------------
    def status(self, store: StoreLike) -> "CampaignStatus":
        """How much of this campaign the store already holds, split
        by outcome: per-outcome counts (``ok`` / ``error`` /
        ``timeout`` / ``crashed``), total retries spent (attempts
        beyond the first, summed over failure records), and the
        quarantine list (trial indices).

        A path store is opened *readonly*: status is an observer, and
        must tolerate (never truncate) the torn tail of a log another
        process — a running campaign, the campaign server — is
        actively appending to."""
        live_store = _as_store(store, readonly=True)
        trials = self.trials()
        cached = failed = retries = 0
        outcomes = {"ok": 0, "error": 0, "timeout": 0, "crashed": 0}
        quarantined_trials: List[int] = []
        for trial in trials:
            record = live_store.get(trial.key)
            if record is None:
                continue
            cached += 1
            outcome = record_outcome(record)
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
            failure = record.get("failure")
            if failure:
                retries += max(0, int(failure.get("attempts", 1)) - 1)
            if outcome != "ok":
                failed += 1
                if record_is_quarantined(record):
                    quarantined_trials.append(trial.index)
        return CampaignStatus(
            name=self.name,
            n_trials=len(trials),
            cached=cached,
            failed=failed,
            quarantined=len(quarantined_trials),
            store_path=(
                None if live_store.path is None else str(live_store.path)
            ),
            outcomes=outcomes,
            retries=retries,
            quarantined_trials=tuple(quarantined_trials),
        )

    # ------------------------------------------------------------------
    # Serialisation (data campaigns only — factories are code).
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        if self._workload_is_factory() or self._faults_is_factory():
            raise ConfigurationError(
                "a campaign with workload/fault factories is code, not "
                "data; express the variation as grid document patches "
                "(workload.*, faults.*) to serialise it"
            )
        faults = normalize_faults(self.faults)
        return {
            "name": self.name,
            "system": self.spec.to_dict(),
            "workload": self.workload.to_dict(),
            "faults": None if faults is None else faults.to_dict(),
            "grid": (
                None if self.grid is None else as_grid(self.grid).to_dict()
            ),
            "backend": self.backend,
            "timeout_s": self.timeout_s,
            "seed": self.seed,
            "wall_timeout_s": self.wall_timeout_s,
            "retry": (
                None
                if self.retry is None
                else normalize_retry(self.retry).to_dict()
            ),
        }

    _KEYS = frozenset({
        "name", "system", "workload", "faults", "grid", "backend",
        "timeout_s", "seed", "wall_timeout_s", "retry",
    })

    @classmethod
    def from_dict(cls, data: Dict, lenient: bool = False) -> "Campaign":
        if lenient:
            data = {k: v for k, v in data.items() if k in cls._KEYS}
        else:
            unknown = set(data) - cls._KEYS
            if unknown:
                raise ConfigurationError(
                    f"unknown Campaign key(s): {', '.join(sorted(unknown))}"
                )
        for required in ("system", "workload"):
            if required not in data:
                raise ConfigurationError(
                    f"a campaign document needs a {required!r} key"
                )
        faults_doc = data.get("faults")
        grid_doc = data.get("grid")
        return cls(
            spec=SystemSpec.from_dict(data["system"], lenient=lenient),
            workload=workload_from_dict(data["workload"], lenient=lenient),
            faults=(
                None
                if faults_doc is None
                else FaultSpec.from_dict(faults_doc, lenient=lenient)
            ),
            grid=None if grid_doc is None else as_grid(grid_doc),
            backend=data.get("backend", "auto"),
            name=data.get("name", ""),
            timeout_s=data.get("timeout_s"),
            seed=data.get("seed"),
            wall_timeout_s=data.get("wall_timeout_s"),
            retry=normalize_retry(data.get("retry")),
        )


@dataclass(frozen=True)
class CampaignStatus:
    """Cache coverage of a campaign against one store."""

    name: str
    n_trials: int
    cached: int
    failed: int = 0
    quarantined: int = 0
    store_path: Optional[str] = None
    #: Per-outcome record counts over the cached trials.
    outcomes: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: Attempts beyond the first, summed over stored failure records.
    retries: int = 0
    #: Trial indices whose stored failure is quarantined.
    quarantined_trials: Sequence[int] = ()

    @property
    def pending(self) -> int:
        return self.n_trials - self.cached

    @property
    def complete(self) -> bool:
        return self.cached == self.n_trials

    # lint: disable=schema -- one-way analytic report; records are re-derived from runs, never loaded back
    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "n_trials": self.n_trials,
            "cached": self.cached,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "pending": self.pending,
            "complete": self.complete,
            "store": self.store_path,
            "outcomes": dict(self.outcomes),
            "retries": self.retries,
            "quarantined_trials": list(self.quarantined_trials),
        }

    def summary(self) -> str:
        label = self.name or "campaign"
        where = f" in {self.store_path}" if self.store_path else ""
        text = (
            f"{label}: {self.cached}/{self.n_trials} trial(s) cached"
            f"{where}, {self.pending} pending"
        )
        counted = {
            k: v for k, v in self.outcomes.items() if v and k != "ok"
        }
        if self.failed:
            breakdown = ", ".join(
                f"{count} {outcome}"
                for outcome, count in sorted(counted.items())
            )
            text += (
                f"; {self.failed} FAILED ({breakdown}; "
                f"{self.quarantined} quarantined)"
            )
        if self.retries:
            text += f"; {self.retries} retr{'y' if self.retries == 1 else 'ies'} spent"
        if self.quarantined_trials:
            shown = ", ".join(
                str(index) for index in list(self.quarantined_trials)[:10]
            )
            more = len(self.quarantined_trials) - 10
            if more > 0:
                shown += f", ... +{more} more"
            text += f"\n  quarantined trial(s): {shown}"
        return text


def load_campaign(
    source: Union[str, Dict], lenient: bool = False
) -> Campaign:
    """Load a :class:`Campaign` from a JSON file or parsed dict."""
    if isinstance(source, str):
        with open(source) as handle:
            document = json.load(handle)
    else:
        document = source
    if not isinstance(document, dict):
        raise ConfigurationError("a campaign document must be a JSON object")
    return Campaign.from_dict(document, lenient=lenient)
