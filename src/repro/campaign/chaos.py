"""Chaos drill workload: trials that fail on purpose.

Hardened infrastructure needs a way to be *drilled*: the acceptance
bar for failure-as-data execution is a campaign whose trials raise,
hang past their wall-clock budget, and kill their worker process —
and the only honest way to express that under the campaign layer's
"execution is a pure function of the trial documents" rule is a
workload document that misbehaves when compiled.  :class:`Chaos` is
that document: a registered workload kind, so it crosses process
boundaries and content-hashes like any other workload.

Behaviours (``behavior=``):

* ``"ok"`` — post one normal message (a healthy control trial);
* ``"raise"`` — raise ``RuntimeError`` during compilation (a
  deterministic in-process failure → ``error`` outcome, no retry);
* ``"transient"`` — raise :class:`~repro.core.errors.TransientTrialError`
  (→ retried with backoff; deterministic, so retries exhaust and the
  failure is recorded with its attempt count);
* ``"flaky"`` — raise :class:`TransientTrialError` until ``token``
  (a scratch-file path) exists, creating it on the way out — the
  first retry then succeeds (the retry-recovers drill);
* ``"hang"`` — burn wall-clock in a sleep loop (bounded at
  ``hang_s``) so per-trial timeouts and worker kills can be
  exercised without a real runaway simulation;
* ``"crash"`` — ``os._exit(13)``: the worker dies without
  reporting, which only the process executor survives.

These are drills, not simulations: ``hang`` and ``crash`` trials
never produce a report and exist purely to exercise the executors'
failure paths (tests, CI smoke, and operator fire drills via
``workload: {"kind": "chaos", ...}`` campaign documents).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.addresses import Address
from repro.core.errors import ConfigurationError, TransientTrialError
from repro.scenario.workload import (
    PostEvent,
    Workload,
    register_workload_kind,
)

BEHAVIORS = ("ok", "raise", "transient", "flaky", "hang", "crash")


@register_workload_kind
@dataclass(frozen=True)
class Chaos(Workload):
    """A workload that misbehaves on compile — the failure drill."""

    behavior: str = "ok"
    #: Scratch-file path for ``"flaky"``: the failure clears once the
    #: file exists (the workload creates it as it raises).
    token: Optional[str] = None
    #: Wall-clock ceiling for ``"hang"`` — a backstop so a drill can
    #: never hang an un-timed campaign forever.
    hang_s: float = 60.0
    #: The healthy message posted by ``"ok"`` (and after a ``"flaky"``
    #: failure clears): first short-addressed non-mediator node.
    payload: bytes = b"\xc4\xa0\x5e"
    kind = "chaos"

    def _events(self, spec):
        if self.behavior not in BEHAVIORS:
            raise ConfigurationError(
                f"chaos behavior must be one of {BEHAVIORS}, "
                f"not {self.behavior!r}"
            )
        if self.behavior == "raise":
            raise RuntimeError("chaos: injected deterministic failure")
        if self.behavior == "transient":
            raise TransientTrialError("chaos: injected transient failure")
        if self.behavior == "flaky":
            if self.token is None:
                raise ConfigurationError(
                    "chaos 'flaky' needs a token file path"
                )
            if not os.path.exists(self.token):
                with open(self.token, "w") as handle:
                    handle.write("chaos\n")
                raise TransientTrialError(
                    "chaos: flaky failure (clears on retry)"
                )
        elif self.behavior == "hang":
            deadline = time.perf_counter() + self.hang_s
            while time.perf_counter() < deadline:
                time.sleep(0.01)
            raise TransientTrialError(
                f"chaos: hang drill outlived its {self.hang_s}s backstop "
                "without being timed out or killed"
            )
        elif self.behavior == "crash":
            os._exit(13)
        source = spec.mediator_name
        target = next(
            (
                node
                for node in spec.nodes
                if node.short_prefix is not None and node.name != source
            ),
            None,
        )
        if target is None:
            raise ConfigurationError(
                "chaos 'ok' needs a short-addressed non-mediator node"
            )
        yield PostEvent(
            at_s=0.0,
            source=source,
            dest=Address.short(target.short_prefix, 0),
            payload=self.payload,
        )

    def _params(self) -> Dict:
        return {
            "behavior": self.behavior,
            "token": self.token,
            "hang_s": self.hang_s,
            "payload": bytes(self.payload).hex(),
        }
