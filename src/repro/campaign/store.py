"""Content-addressed, append-only result memoisation.

A :class:`ResultStore` maps trial keys (SHA-256 of the canonical
trial documents — see :attr:`repro.campaign.trial.Trial.key`) to
executed records.  The on-disk form is one directory holding a single
``results.jsonl``: one canonical-JSON record per line, append-only.

Properties the campaign layer leans on:

* **resumable** — a killed campaign leaves every completed trial on
  disk; reopening the store and re-running the campaign executes only
  the missing trials.  A write interrupted mid-line leaves a partial
  tail with no newline; :meth:`_load` rolls the file back to the last
  complete line before appending anything new, so one torn record
  never poisons the log.
* **append-only** — records are never rewritten in place.  Re-putting
  an identical record is a no-op; a *different* record under an
  existing key (e.g. after a schema bump) is appended and wins on
  reload (last write wins), preserving full history in the log.
* **byte-deterministic** — records are serialised with
  :func:`~repro.campaign.trial.canonical_json`, so the same trial
  always produces the same bytes, regardless of executor, process or
  execution order (asserted by ``tests/integration/test_campaign.py``).
* **schema-tolerant** — readers keep whole records as plain JSON and
  ignore keys they do not understand; records stamped with a newer
  ``schema_version`` still load (the ``lenient`` loaders reconstruct
  objects from their documents by dropping unknown fields).

``ResultStore.memory()`` gives the same interface with no filesystem
behind it — the default scratch cache for one-off campaign runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.campaign.trial import canonical_json
from repro.core.errors import ConfigurationError

RESULTS_FILENAME = "results.jsonl"


class ResultStore:
    """Key -> record memoisation, optionally JSONL-backed on disk."""

    def __init__(self, path: Union[str, Path, None]):
        self._path: Optional[Path] = None if path is None else Path(path)
        self._records: Dict[str, Dict] = {}
        self._lines: Dict[str, str] = {}
        self._order: List[str] = []
        if self._path is not None:
            self._path.mkdir(parents=True, exist_ok=True)
            self._load()

    @classmethod
    def memory(cls) -> "ResultStore":
        """A purely in-process store (no persistence)."""
        return cls(None)

    # -- introspection -----------------------------------------------------
    @property
    def path(self) -> Optional[Path]:
        return self._path

    @property
    def results_path(self) -> Optional[Path]:
        if self._path is None:
            return None
        return self._path / RESULTS_FILENAME

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def keys(self) -> List[str]:
        """Stored keys, in first-seen order."""
        return list(self._order)

    def records(self) -> Iterator[Dict]:
        """Stored records, in first-seen key order."""
        for key in self._order:
            yield self._records[key]

    def entries(self) -> List[str]:
        """The canonical record lines (the exact persisted bytes,
        minus newlines) — the byte-identity test surface."""
        return [self._lines[key] for key in self._order]

    def get(self, key: str) -> Optional[Dict]:
        return self._records.get(key)

    # -- mutation ----------------------------------------------------------
    def put(self, record: Dict) -> bool:
        """Memoise ``record``; returns True if anything was written.

        Identical re-puts are no-ops.  A changed record under an
        existing key is appended (the log keeps history; the index
        takes the newest).
        """
        key = record.get("key")
        if not isinstance(key, str) or not key:
            raise ConfigurationError(
                "a store record needs a non-empty string 'key'"
            )
        line = canonical_json(record)
        if self._lines.get(key) == line:
            return False
        if key not in self._records:
            self._order.append(key)
        self._records[key] = json.loads(line)
        self._lines[key] = line
        if self._path is not None:
            with open(self.results_path, "a") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        return True

    # -- loading -----------------------------------------------------------
    def _load(self) -> None:
        path = self.results_path
        if not path.exists():
            return
        raw = path.read_bytes()
        if raw and not raw.endswith(b"\n"):
            # A torn append (killed mid-write): roll back to the last
            # complete line so subsequent appends start clean.
            keep = raw.rfind(b"\n") + 1
            path.write_bytes(raw[:keep])
            raw = raw[:keep]
        for line in raw.decode("utf-8", errors="replace").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A corrupt interior line loses one record, never the
                # store: skip it rather than refuse to open.
                continue
            key = record.get("key") if isinstance(record, dict) else None
            if not isinstance(key, str) or not key:
                continue
            if key not in self._records:
                self._order.append(key)
            self._records[key] = record
            self._lines[key] = line
