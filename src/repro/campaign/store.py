"""Content-addressed, append-only result memoisation.

A :class:`ResultStore` maps trial keys (SHA-256 of the canonical
trial documents — see :attr:`repro.campaign.trial.Trial.key`) to
executed records.  The on-disk form is one directory holding a single
``results.jsonl``: one canonical-JSON record per line, append-only.

Properties the campaign layer leans on:

* **resumable** — a killed campaign leaves every completed trial on
  disk; reopening the store and re-running the campaign executes only
  the missing trials.  A write interrupted mid-line leaves a partial
  tail with no newline; :meth:`_load` rolls the file back to the last
  complete line before appending anything new, so one torn record
  never poisons the log.
* **append-only** — records are never rewritten in place.  Re-putting
  an identical record is a no-op; a *different* record under an
  existing key (e.g. after a schema bump, or a failed trial re-run
  under ``retry_failed``) is appended and wins on reload (last write
  wins), preserving full history in the log.
* **bounded** — last-write-wins appending leaves superseded lines
  behind, and a cross-run retry loop (a flaky trial failed and
  re-recorded every campaign run) would otherwise grow the log
  without bound.  :meth:`compact` rewrites the file down to the live
  records (atomically: temp file + ``os.replace``); stores auto-compact
  on load once the stale-line count passes
  ``max(live records, AUTO_COMPACT_MIN_STALE)``.
* **byte-deterministic** — records are serialised with
  :func:`~repro.campaign.trial.canonical_json`, so the same trial
  always produces the same bytes, regardless of executor, process or
  execution order (asserted by ``tests/integration/test_campaign.py``).
* **schema-tolerant** — readers keep whole records as plain JSON and
  ignore keys they do not understand; records stamped with a newer
  ``schema_version`` still load (the ``lenient`` loaders reconstruct
  objects from their documents by dropping unknown fields).
* **indexed** — loading builds an in-memory ``key -> record`` index
  once; membership (``key in store``) and :meth:`get` are O(1) dict
  lookups that never re-read the JSONL (the lookup surface the
  campaign server's dedupe path and ``campaign status`` lean on).
  :meth:`refresh` picks up records appended by *another* process by
  reading only the file tail past the last consumed byte.
* **observer-safe** — ``readonly=True`` opens a store without ever
  writing: a torn tail is tolerated in memory (the rollback happens
  on the parsed bytes, not the file), auto-compaction is off and
  :meth:`put` refuses.  This is the mode for ``campaign status`` /
  ``results`` style observers of a store another process is actively
  appending to — a plain open used to *truncate* the live file to
  roll back a torn tail, racing the writer.

``ResultStore.memory()`` gives the same interface with no filesystem
behind it — the default scratch cache for one-off campaign runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.campaign.trial import canonical_json
from repro.core.errors import ConfigurationError

RESULTS_FILENAME = "results.jsonl"

#: Auto-compaction floor: a loaded store rewrites itself only once it
#: carries more stale (superseded or unparsable) lines than live
#: records *and* at least this many — tiny stores never churn disk.
AUTO_COMPACT_MIN_STALE = 64


class ResultStore:
    """Key -> record memoisation, optionally JSONL-backed on disk."""

    def __init__(
        self,
        path: Union[str, Path, None],
        auto_compact: bool = True,
        readonly: bool = False,
    ):
        self._path: Optional[Path] = None if path is None else Path(path)
        self._readonly = readonly
        self._records: Dict[str, Dict] = {}
        self._lines: Dict[str, str] = {}
        self._order: List[str] = []
        self._stale = 0
        #: Bytes of the log consumed so far (complete lines only) —
        #: the resume point for :meth:`refresh`.
        self._offset = 0
        if self._path is not None:
            if not readonly:
                self._path.mkdir(parents=True, exist_ok=True)
            self._load()
            if (
                not readonly
                and auto_compact
                and self._stale
                > max(len(self._records), AUTO_COMPACT_MIN_STALE)
            ):
                self.compact()

    @classmethod
    def memory(cls) -> "ResultStore":
        """A purely in-process store (no persistence)."""
        return cls(None)

    # -- introspection -----------------------------------------------------
    @property
    def path(self) -> Optional[Path]:
        return self._path

    @property
    def results_path(self) -> Optional[Path]:
        if self._path is None:
            return None
        return self._path / RESULTS_FILENAME

    @property
    def readonly(self) -> bool:
        return self._readonly

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def keys(self) -> List[str]:
        """Stored keys, in first-seen order."""
        return list(self._order)

    def records(self) -> Iterator[Dict]:
        """Stored records, in first-seen key order."""
        for key in self._order:
            yield self._records[key]

    def entries(self) -> List[str]:
        """The canonical record lines (the exact persisted bytes,
        minus newlines) — the byte-identity test surface."""
        return [self._lines[key] for key in self._order]

    def get(self, key: str) -> Optional[Dict]:
        return self._records.get(key)

    @property
    def stale_lines(self) -> int:
        """Superseded or unparsable lines currently in the log — the
        bytes :meth:`compact` would reclaim."""
        return self._stale

    # -- mutation ----------------------------------------------------------
    def put(self, record: Dict) -> bool:
        """Memoise ``record``; returns True if anything was written.

        Identical re-puts are no-ops.  A changed record under an
        existing key is appended (the log keeps history; the index
        takes the newest).
        """
        if self._readonly:
            raise ConfigurationError(
                "this store was opened readonly (an observer of a log "
                "another process is appending to); open it without "
                "readonly=True to write"
            )
        key = record.get("key")
        if not isinstance(key, str) or not key:
            raise ConfigurationError(
                "a store record needs a non-empty string 'key'"
            )
        line = canonical_json(record)
        if self._lines.get(key) == line:
            return False
        if key not in self._records:
            self._order.append(key)
        else:
            self._stale += 1  # the old line is now dead weight
        self._records[key] = json.loads(line)
        self._lines[key] = line
        if self._path is not None:
            with open(self.results_path, "a") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            self._offset += len(line.encode("utf-8")) + 1
        return True

    # -- loading -----------------------------------------------------------
    def _load(self) -> None:
        path = self.results_path
        if not path.exists():
            return
        raw = path.read_bytes()
        if raw and not raw.endswith(b"\n"):
            # A torn tail: either a killed writer (mid-append) or a
            # *live* writer another process is racing us with.  The
            # rollback to the last complete line always happens on the
            # parsed bytes; only a writable open also rolls the file
            # itself back (so its own appends start clean).  A
            # readonly observer must never truncate a log someone else
            # is appending to.
            keep = raw.rfind(b"\n") + 1
            if not self._readonly:
                path.write_bytes(raw[:keep])
            raw = raw[:keep]
        self._consume(raw)
        self._offset = len(raw)

    def _consume(self, raw: bytes) -> int:
        """Index complete record lines from ``raw``; returns how many
        lines carried a key (new or superseding)."""
        indexed = 0
        for line in raw.decode("utf-8", errors="replace").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A corrupt interior line loses one record, never the
                # store: skip it rather than refuse to open.
                self._stale += 1
                continue
            key = record.get("key") if isinstance(record, dict) else None
            if not isinstance(key, str) or not key:
                self._stale += 1
                continue
            if key not in self._records:
                self._order.append(key)
            else:
                self._stale += 1
            self._records[key] = record
            self._lines[key] = line
            indexed += 1
        return indexed

    def refresh(self) -> int:
        """Pick up records another process appended since the last
        load/refresh, reading only the unseen tail of the log (the
        in-memory index stays O(1) for lookups; nothing is rescanned).
        A torn last line is left unconsumed for the next refresh; a
        log that *shrank* (externally compacted) triggers one full
        reload.  Returns the number of record lines consumed."""
        path = self.results_path
        if path is None or not path.exists():
            return 0
        size = path.stat().st_size
        if size < self._offset:
            # Externally compacted/rewritten: start over.
            self._records.clear()
            self._lines.clear()
            self._order.clear()
            self._stale = 0
            self._offset = 0
        if size == self._offset:
            return 0
        with open(path, "rb") as handle:
            handle.seek(self._offset)
            raw = handle.read()
        if raw and not raw.endswith(b"\n"):
            keep = raw.rfind(b"\n") + 1
            raw = raw[:keep]   # leave the torn tail for next time
        if not raw:
            return 0
        consumed = self._consume(raw)
        self._offset += len(raw)
        return consumed

    # -- compaction --------------------------------------------------------
    def compact(self) -> int:
        """Rewrite the log down to the live records, in first-seen key
        order.  Atomic (temp file + ``os.replace``): a crash mid-compact
        leaves the original log untouched.  Returns the number of
        stale lines reclaimed; a no-op for memory stores and for logs
        that are already compact.
        """
        if self._readonly:
            raise ConfigurationError(
                "cannot compact a store opened readonly"
            )
        reclaimed = self._stale
        if self._path is None or reclaimed == 0:
            return 0
        path = self.results_path
        tmp = path.with_suffix(".jsonl.tmp")
        written = 0
        with open(tmp, "w") as handle:
            for key in self._order:
                line = self._lines[key] + "\n"
                handle.write(line)
                written += len(line.encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self._stale = 0
        self._offset = written
        return reclaimed
