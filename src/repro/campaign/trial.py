"""Trials: the compiled, content-addressed unit of campaign work.

A :class:`Trial` is one fully-resolved experiment: plain JSON
documents for the topology (``spec_doc``), traffic (``workload_doc``)
and adversity (``faults_doc``), plus the requested backend and
timeout.  Compiling campaigns down to documents *before* execution is
what buys every property the campaign layer promises:

* **determinism / order independence** — executing a trial is a pure
  function of its documents (workload and fault factories already ran
  in the parent, seeds and all), so serial, process-parallel and
  shuffled executions produce identical records;
* **parallelism** — documents pickle trivially across process
  boundaries; no simulator state, factory closure or live object
  ever crosses;
* **memoisation** — :attr:`Trial.key` is a SHA-256 over the canonical
  JSON of the spec/workload/faults/backend documents, giving the
  :class:`~repro.campaign.store.ResultStore` a content address that
  survives interpreter restarts and is insensitive to dict ordering.

The executed outcome is a *record*: a JSON document holding the
trial's key, parameters and the :meth:`RunReport.to_dict` report with
its ``wall_s`` / ``wall_throughput_tps`` fields removed (wall-clock
noise must never enter a content-addressed record — two byte-identical
runs would otherwise hash the weather of the host machine).  Wall time is reported
separately, per execution, on the
:class:`~repro.campaign.resultset.TrialResult`.
"""

from __future__ import annotations

import functools
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.core.schema import REPORT_SCHEMA_VERSION


def canonical_json(document: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace.

    The single serialisation used for hashing, store lines and
    byte-identity comparisons, so "equal documents" and "equal bytes"
    are the same statement.
    """
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def derive_trial_seed(campaign_seed: int, point: Dict[str, Any]) -> int:
    """A per-trial seed that is a pure function of (campaign seed,
    grid point) — stable across interpreters, processes and execution
    order (unlike ``hash()``, which is salted per process)."""
    digest = hashlib.sha256(
        canonical_json([campaign_seed, point]).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class Trial:
    """One fully-resolved experiment, ready to execute anywhere."""

    index: int
    params: Dict[str, Any]
    spec_doc: Dict
    workload_doc: Dict
    faults_doc: Optional[Dict] = None
    backend: str = "auto"
    timeout_s: Optional[float] = None
    #: Per-trial wall-clock budget (host seconds).  Execution policy,
    #: not content: two trials differing only in their wall budget are
    #: the same experiment, so this field never enters :attr:`key`.
    wall_timeout_s: Optional[float] = None

    @functools.cached_property
    def key(self) -> str:
        """Content address: SHA-256 of the canonical trial documents.

        ``params`` are deliberately excluded — they are provenance
        (how the grid named this point), not content; two grids that
        compile to the same documents share one cache entry.
        ``wall_timeout_s`` is excluded for the same reason: a
        wall-clock budget is how the trial is *executed*, not what it
        *is*.
        """
        return hashlib.sha256(
            canonical_json(
                {
                    "spec": self.spec_doc,
                    "workload": self.workload_doc,
                    "faults": self.faults_doc,
                    "backend": self.backend,
                    "timeout_s": self.timeout_s,
                }
            ).encode()
        ).hexdigest()

    def to_dict(self) -> Dict:
        return {
            "index": self.index,
            "params": dict(self.params),
            "spec": self.spec_doc,
            "workload": self.workload_doc,
            "faults": self.faults_doc,
            "backend": self.backend,
            "timeout_s": self.timeout_s,
            "wall_timeout_s": self.wall_timeout_s,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Trial":
        return cls(
            index=data["index"],
            params=data["params"],
            spec_doc=data["spec"],
            workload_doc=data["workload"],
            faults_doc=data.get("faults"),
            backend=data.get("backend", "auto"),
            timeout_s=data.get("timeout_s"),
            wall_timeout_s=data.get("wall_timeout_s"),
        )


def trial_record(trial: Trial, report_doc: Dict) -> Dict:
    """The store record for one executed trial.

    ``report_doc`` is :meth:`RunReport.to_dict` output; its
    ``wall_s`` is dropped so the record is a pure function of the
    trial documents (the byte-identity contract tested by
    ``tests/integration/test_campaign.py``).
    """
    doc = dict(report_doc)
    doc.pop("wall_s", None)
    doc.pop("wall_throughput_tps", None)
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "key": trial.key,
        "params": dict(trial.params),
        "backend": doc.get("backend"),
        "outcome": "ok",
        "report": doc,
    }


def execute_trial(
    trial: Trial,
    setup: Optional[Callable] = None,
    trace: bool = False,
) -> Tuple[Dict, float, Any]:
    """Run one trial in this process.

    Returns ``(record, wall_s, report)`` — the JSON record for the
    store, the wall-clock cost of this execution, and the live
    :class:`~repro.scenario.runner.RunReport` (for
    ``keep_reports=True`` serial runs; never sent across process
    boundaries, it holds the unpicklable simulator).
    """
    from repro.faults.primitives import FaultSpec
    from repro.scenario.runner import run
    from repro.scenario.spec import SystemSpec
    from repro.scenario.workload import workload_from_dict

    spec = SystemSpec.from_dict(trial.spec_doc)
    workload = workload_from_dict(trial.workload_doc)
    faults = (
        None
        if trial.faults_doc is None
        else FaultSpec.from_dict(trial.faults_doc)
    )
    report = run(
        spec,
        workload,
        backend=trial.backend,
        trace=trace,
        timeout_s=trial.timeout_s,
        setup=setup,
        faults=faults,
        wall_timeout_s=trial.wall_timeout_s,
    )
    return trial_record(trial, report.to_dict()), report.wall_s, report


def run_trial_document(trial_doc: Dict) -> Tuple[int, Dict, float]:
    """Process-pool entry point: execute a trial shipped as a dict.

    Module-level (picklable by reference) and document-in /
    document-out, so the only things crossing the process boundary
    are JSON-shaped.
    """
    trial = Trial.from_dict(trial_doc)
    record, wall_s, _report = execute_trial(trial)
    return trial.index, record, wall_s


def patch_document(document: Any, path: str, value: Any, what: str) -> None:
    """Set ``path`` (dotted, with integer segments indexing lists) in
    a JSON document in place — the mechanism behind ``workload.*`` /
    ``faults.*`` / ``system.*`` grid axes.

    Only *existing* dict keys may be patched: a typo in an axis name
    must fail compilation, not silently sweep nothing.
    """
    parts = path.split(".")
    target = document
    trail = what
    for i, part in enumerate(parts):
        last = i == len(parts) - 1
        if isinstance(target, list):
            try:
                index = int(part)
            except ValueError:
                raise ConfigurationError(
                    f"{trail} is a list; {part!r} is not an index"
                ) from None
            if not -len(target) <= index < len(target):
                raise ConfigurationError(
                    f"{trail} has {len(target)} entries; "
                    f"index {index} is out of range"
                )
            if last:
                target[index] = value
            else:
                target = target[index]
        elif isinstance(target, dict):
            if part not in target:
                raise ConfigurationError(
                    f"{trail} has no field {part!r} "
                    f"(existing: {', '.join(sorted(map(str, target)))})"
                )
            if last:
                target[part] = value
            else:
                target = target[part]
        else:
            raise ConfigurationError(
                f"{trail} is a {type(target).__name__}; cannot descend "
                f"into {part!r}"
            )
        trail = f"{trail}.{part}"
