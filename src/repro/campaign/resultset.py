"""Queryable campaign results: figures become queries, not loops.

:meth:`Campaign.run` returns a :class:`ResultSet` — an ordered,
immutable sequence of :class:`TrialResult` (one per compiled trial,
whether executed or served from the store).  Instead of iterating
reports and hand-rolling accumulators, studies query:

* ``rs.filter(clock_hz=400e3)`` / ``rs.filter(lambda r: ...)``
* ``rs.group_by("glitch_rate_hz")`` -> ``{rate: ResultSet}``
* ``rs.aggregate("report.goodput_bps", agg="mean", by=("clock_hz",))``
* ``rs.series("glitch_rate_hz", "report.reliability.recovery_rate")``
* ``rs.to_table()`` / ``rs.to_jsonl(path)``

Metrics address the stored record by dotted path (``report.n_ok``,
``report.reliability.recovery_rate``, ``params.clock_hz``) or by a
callable ``TrialResult -> value``; bare names are looked up in
``params`` first, then at the top of the report — so the common cases
read naturally.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.campaign.failures import TrialFailure, record_outcome
from repro.campaign.trial import Trial, canonical_json
from repro.core.errors import ConfigurationError

Metric = Union[str, Callable[["TrialResult"], Any]]

_MISSING = object()

AGGREGATIONS: Dict[str, Callable[[List[Any]], Any]] = {
    "mean": statistics.fmean,
    "median": statistics.median,
    "min": min,
    "max": max,
    "sum": sum,
    "count": len,
}


@dataclass(frozen=True)
class TrialResult:
    """One trial's outcome: its record, and how it was obtained."""

    trial: Trial
    record: Dict
    #: True when the record came from the store (or from an earlier
    #: identical trial in the same run) instead of being executed.
    cached: bool
    #: Wall-clock cost of *this* execution; 0.0 for cache hits.  Kept
    #: off the record so cached bytes stay content-addressed.
    wall_s: float = 0.0
    #: The live RunReport, only for serial ``keep_reports=True`` runs
    #: (it holds the unpicklable simulator); never part of equality.
    live: Any = field(default=None, repr=False, compare=False)

    @property
    def key(self) -> str:
        return self.trial.key

    @property
    def params(self) -> Dict[str, Any]:
        return self.trial.params

    @property
    def report(self) -> Dict:
        """The stored report; empty for failed trials (their record
        carries a ``failure`` document instead)."""
        return self.record.get("report") or {}

    @property
    def reliability(self) -> Optional[Dict]:
        return self.report.get("reliability")

    @property
    def outcome(self) -> str:
        """``"ok"`` / ``"error"`` / ``"timeout"`` / ``"crashed"``."""
        return record_outcome(self.record)

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    @property
    def failure(self) -> Optional[TrialFailure]:
        """The structured failure, or None for successful trials."""
        doc = self.record.get("failure")
        if doc is None:
            return None
        return TrialFailure.from_dict(doc, lenient=True)

    def value(self, metric: Metric, default: Any = _MISSING) -> Any:
        """Resolve a metric against this result (see module docs)."""
        if callable(metric):
            return metric(self)
        if not isinstance(metric, str):
            raise ConfigurationError(
                f"a metric is a dotted path or a callable, not {metric!r}"
            )
        # Parameters always win, even dotted ones: grid axes like
        # "faults.faults.0.rate_hz" are parameter *names*, and must
        # stay addressable after compilation.
        if metric in self.params:
            return self.params[metric]
        if "." not in metric:
            if metric in self.report:
                return self.report[metric]
            if metric in self.record:
                return self.record[metric]
            if default is not _MISSING:
                return default
            raise ConfigurationError(
                f"metric {metric!r} names neither a parameter nor a "
                "top-level report field"
            )
        target: Any = self.record
        for part in metric.split("."):
            if isinstance(target, dict) and part in target:
                target = target[part]
            elif isinstance(target, list):
                try:
                    target = target[int(part)]
                except (ValueError, IndexError):
                    target = _MISSING
            else:
                target = _MISSING
            if target is _MISSING:
                if default is not _MISSING:
                    return default
                raise ConfigurationError(
                    f"metric path {metric!r} does not resolve in this "
                    "record"
                )
        return target


class ResultSet(Sequence):
    """An ordered, immutable, queryable set of trial results."""

    def __init__(
        self,
        results: Sequence[TrialResult],
        executor: str = "serial",
        wall_s: float = 0.0,
        name: str = "",
        interrupted: bool = False,
        planned: Optional[int] = None,
    ):
        self._results: Tuple[TrialResult, ...] = tuple(results)
        self.executor = executor
        #: Wall-clock of the whole campaign run (including scheduling
        #: and cache lookups), not the sum of per-trial walls.
        self.wall_s = wall_s
        self.name = name
        #: True when the run was stopped early (SIGINT/SIGTERM): the
        #: set holds only the trials that finished before the stop.
        self.interrupted = interrupted
        #: How many trials the campaign compiled; equals ``len(self)``
        #: unless the run was interrupted.
        self.planned = len(self._results) if planned is None else planned

    # -- sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[TrialResult]:
        return iter(self._results)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self._derive(self._results[index])
        return self._results[index]

    def _derive(self, results: Sequence[TrialResult]) -> "ResultSet":
        return ResultSet(
            results, executor=self.executor, wall_s=self.wall_s,
            name=self.name, interrupted=self.interrupted,
            planned=self.planned,
        )

    # -- provenance --------------------------------------------------------
    @property
    def executed(self) -> int:
        return sum(1 for r in self._results if not r.cached)

    @property
    def cached(self) -> int:
        return sum(1 for r in self._results if r.cached)

    @property
    def cache_hit_rate(self) -> float:
        if not self._results:
            return 0.0
        return self.cached / len(self._results)

    @property
    def failed(self) -> int:
        """Trials whose outcome is not ``"ok"``."""
        return sum(1 for r in self._results if not r.ok)

    @property
    def quarantined(self) -> int:
        """Failed trials whose retryable class exhausted its attempts."""
        return sum(
            1
            for r in self._results
            if r.failure is not None and r.failure.quarantined
        )

    def failures(self) -> "ResultSet":
        """The failed trials, as a queryable subset."""
        return self._derive([r for r in self._results if not r.ok])

    def oks(self) -> "ResultSet":
        """The successful trials (safe to feed metric queries that
        assume a report is present)."""
        return self._derive([r for r in self._results if r.ok])

    def records(self) -> List[Dict]:
        return [r.record for r in self._results]

    # -- queries -----------------------------------------------------------
    def filter(
        self,
        predicate: Optional[Callable[[TrialResult], bool]] = None,
        **params: Any,
    ) -> "ResultSet":
        """Results matching ``predicate`` and/or parameter equality."""
        absent = object()   # a missing key never equals, so the row drops
        kept = []
        for result in self._results:
            if predicate is not None and not predicate(result):
                continue
            if any(
                result.value(key, default=absent) != value
                for key, value in params.items()
            ):
                continue
            kept.append(result)
        return self._derive(kept)

    def group_by(self, *keys: Metric) -> Dict[Any, "ResultSet"]:
        """Partition by metric value(s); single key -> scalar group
        keys, several keys -> tuples.  Insertion-ordered."""
        if not keys:
            raise ConfigurationError("group_by needs at least one key")
        groups: Dict[Any, List[TrialResult]] = {}
        for result in self._results:
            values = tuple(result.value(key) for key in keys)
            group = values[0] if len(keys) == 1 else values
            groups.setdefault(group, []).append(result)
        return {
            group: self._derive(members)
            for group, members in groups.items()
        }

    def aggregate(
        self,
        metric: Metric,
        agg: Union[str, Callable[[List[Any]], Any]] = "mean",
        by: Sequence[Metric] = (),
    ) -> Any:
        """Reduce ``metric`` over the set (or per ``by``-group)."""
        if callable(agg):
            reducer = agg
        else:
            reducer = AGGREGATIONS.get(agg)
            if reducer is None:
                raise ConfigurationError(
                    f"agg must be a callable or one of "
                    f"{sorted(AGGREGATIONS)}, not {agg!r}"
                )
        if by:
            return {
                group: reducer([r.value(metric) for r in members])
                for group, members in self.group_by(*by).items()
            }
        return reducer([r.value(metric) for r in self._results])

    def series(self, x: Metric, y: Metric) -> List[Tuple[Any, Any]]:
        """(x, y) pairs, chart-ready (``repro.analysis.ascii_chart``)."""
        return [(r.value(x), r.value(y)) for r in self._results]

    # -- presentation ------------------------------------------------------
    def param_keys(self) -> List[str]:
        keys: List[str] = []
        for result in self._results:
            for key in result.params:
                if key not in keys:
                    keys.append(key)
        return keys

    def _default_columns(self) -> List[Tuple[str, Metric]]:
        columns: List[Tuple[str, Metric]] = [
            (key, key) for key in self.param_keys()
        ]
        columns += [
            (
                "ok",
                lambda r: (
                    f"{r.report['n_ok']}/{r.report['n_transactions']}"
                    if r.ok
                    else "-"
                ),
            ),
            ("txn/s", "report.throughput_tps"),
            (
                "kbit/s",
                lambda r: r.report["goodput_bps"] / 1e3 if r.ok else "",
            ),
        ]
        if any(r.reliability for r in self._results):
            columns.append(
                ("recovery", "report.reliability.recovery_rate")
            )
        if any(not r.ok for r in self._results):
            columns.append(
                (
                    "outcome",
                    lambda r: r.outcome
                    + (
                        " (q)"
                        if r.failure is not None and r.failure.quarantined
                        else ""
                    ),
                )
            )
        columns.append(("cached", lambda r: "yes" if r.cached else "no"))
        return columns

    @staticmethod
    def _format_cell(value: Any) -> str:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return str(value)
        if isinstance(value, int):
            return str(value)
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.4g}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")

    def to_table(
        self,
        columns: Optional[Sequence[Union[Metric, Tuple[str, Metric]]]] = None,
        title: str = "",
    ) -> str:
        """Render as text via :func:`repro.analysis.format_table`."""
        from repro.analysis import format_table

        if columns is None:
            resolved = self._default_columns()
        else:
            resolved = [
                column if isinstance(column, tuple) else (str(column), column)
                for column in columns
            ]
        rows = [
            tuple(
                self._format_cell(result.value(metric, default=""))
                for _, metric in resolved
            )
            for result in self._results
        ]
        return format_table(
            [header for header, _ in resolved],
            rows,
            title=title or (self.name and f"campaign: {self.name}") or "",
        )

    def to_jsonl(self, path: str) -> int:
        """Write one canonical record line per result; returns the
        number of lines written (the store's exact byte format)."""
        with open(path, "w") as handle:
            for result in self._results:
                handle.write(canonical_json(result.record) + "\n")
        return len(self._results)

    def summary(self) -> str:
        label = self.name or "campaign"
        text = (
            f"{label}: {len(self)} trial(s) via {self.executor} executor — "
            f"{self.executed} executed, {self.cached} from cache "
            f"({self.cache_hit_rate:.0%}) in {self.wall_s * 1e3:.0f} ms"
        )
        if self.failed:
            text += (
                f"; {self.failed} FAILED"
                f" ({self.quarantined} quarantined)"
            )
        if self.interrupted:
            pending = self.planned - len(self)
            text += f"; INTERRUPTED with {pending} trial(s) pending"
        return text
