"""Trial executors: failure-isolating serial and process execution.

Both executors share one contract: take compiled
:class:`~repro.campaign.trial.Trial` documents, and deliver *every*
trial an outcome — a success record or a structured failure record —
without ever letting one bad trial abort the campaign.  The
differences are the failure classes each can survive:

=====================  ========  =========
failure                 serial    process
=====================  ========  =========
raised exception        record    record
wall-clock timeout      record*   record (worker killed)
worker crash            fatal     record (pool replenished)
=====================  ========  =========

``*`` the serial timeout is cooperative (the event loop polls the
deadline), so a hang *outside* the simulation loop — pathological
workload compilation, a stuck I/O call — can only be preempted by the
process executor, which SIGKILLs the worker at a hard deadline and
spawns a replacement.

The process executor is deliberately not ``concurrent.futures``: a
dead worker there breaks the whole pool (``BrokenProcessPool``) and
cannot tell the scheduler *which* trial killed it.  Here every worker
owns exactly one in-flight trial over its own duplex pipe, so crash
attribution is exact, kills are per-trial, and the pool replenishes
itself worker by worker.

Retries ride on :class:`~repro.campaign.failures.RetryPolicy`:
transient errors and crashes are re-attempted with exponential
backoff; a retryable failure that exhausts its attempts is recorded
quarantined (the poison-trial rule).  A ``stop`` event (set by the
campaign's SIGINT/SIGTERM handler) checkpoints cleanly: no new
dispatches, in-flight workers are killed, and unfinished trials are
simply left for the next resume — the append-only store already holds
every completed outcome.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from multiprocessing.connection import wait as connection_wait
from typing import Callable, Dict, List, Optional, Sequence

from repro.campaign.failures import (
    RetryPolicy,
    TrialFailure,
    classify_exception,
    crash_failure,
    failure_record,
)
from repro.campaign.trial import Trial, execute_trial, run_trial_document
from repro.obs.state import OBS

#: outcome callback: (trial, record, wall_s, live_report_or_None)
OutcomeCallback = Callable[[Trial, Dict, float, Optional[object]], None]

#: Grace multiplier/offset for the process executor's hard kill: the
#: cooperative in-worker timeout should fire first; the SIGKILL is the
#: backstop for hangs the event loop never sees.
HARD_KILL_FACTOR = 1.5
HARD_KILL_GRACE_S = 1.0


def _interruptible_sleep(seconds: float, stop: threading.Event) -> None:
    stop.wait(timeout=seconds)


def _count_retry(delay_s: float) -> None:
    """Guarded retry accounting, shared by both executors (the
    backoff total is host time, hence the ``wall`` in its name)."""
    OBS.metrics.inc("campaign.retries")
    OBS.metrics.inc("campaign.retry_backoff_wall_s", delay_s)


def run_serial(
    trials: Sequence[Trial],
    on_outcome: OutcomeCallback,
    policy: RetryPolicy,
    stop: threading.Event,
    setup: Optional[Callable] = None,
    trace: bool = False,
) -> bool:
    """Execute ``trials`` in order, in this process.

    Returns True if execution was interrupted by ``stop`` (remaining
    trials got no outcome and stay pending for a future resume).
    """
    for trial in trials:
        if stop.is_set():
            return True
        if OBS.enabled and OBS.tracer is not None:
            # Nested run spans from the in-process execution land
            # inside this trial span (campaign > trial > run ...).
            with OBS.tracer.span(
                "trial", cat="campaign", index=trial.index
            ):
                _serial_attempts(
                    trial, on_outcome, policy, stop, setup, trace
                )
        else:
            _serial_attempts(trial, on_outcome, policy, stop, setup, trace)
    return False


def _serial_attempts(
    trial: Trial,
    on_outcome: OutcomeCallback,
    policy: RetryPolicy,
    stop: threading.Event,
    setup: Optional[Callable],
    trace: bool,
) -> None:
    """One trial's attempt loop: execute, retry transients, record."""
    attempts = 0
    while True:
        attempts += 1
        start = time.perf_counter()
        try:
            record, wall_s, report = execute_trial(
                trial, setup=setup, trace=trace
            )
        except Exception as exc:
            failure = classify_exception(exc, attempts=attempts)
            if policy.should_retry(failure) and not stop.is_set():
                delay_s = policy.delay_s(attempts)
                if OBS.enabled:
                    _count_retry(delay_s)
                _interruptible_sleep(delay_s, stop)
                continue
            failure = policy.finalize(failure)
            on_outcome(
                trial,
                failure_record(trial, failure),
                time.perf_counter() - start,
                None,
            )
            return
        on_outcome(trial, record, wall_s, report)
        return


# ----------------------------------------------------------------------
# The process pool.
# ----------------------------------------------------------------------
def _emit_trial_span(trial: Trial, outcome: str, wall_s: float) -> None:
    """Pool-side trial span, emitted at outcome delivery: the trial
    ran in a worker process, so the parent records a leaf span whose
    wall width back-dates from the reported duration.  Call only when
    ``OBS.enabled``."""
    tracer = OBS.tracer
    if tracer is not None:
        tracer.emit(
            "trial",
            cat="campaign",
            index=trial.index,
            outcome=outcome,
            wall_dur_s=wall_s,
        )


def _worker_main(conn) -> None:
    """Worker loop: receive a trial document, send back its outcome.

    Exceptions become ``("fail", index, failure_doc, wall_s)``
    messages; only a crash (or kill) leaves the parent without a
    message, which is exactly how the parent detects crashes.
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        trial_doc, attempts = task
        start = time.perf_counter()
        try:
            index, record, wall_s = run_trial_document(trial_doc)
            payload = ("ok", index, record, wall_s)
        except Exception as exc:
            failure = classify_exception(exc, attempts=attempts)
            payload = (
                "fail",
                trial_doc["index"],
                failure.to_dict(),
                time.perf_counter() - start,
            )
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):
            return


@dataclass
class _Attempt:
    """One trial's scheduling state inside the pool."""

    trial: Trial
    attempts: int = 0
    eligible_at: float = 0.0   # monotonic time before which not to dispatch


class _Worker:
    """One pool member: a process plus its duplex pipe."""

    def __init__(self, ctx):
        self.conn, child = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main, args=(child,), daemon=True
        )
        self.process.start()
        child.close()
        self.attempt: Optional[_Attempt] = None
        self.started_at: float = 0.0
        self.hard_deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.attempt is not None

    def dispatch(self, attempt: _Attempt, wall_timeout_s: Optional[float]):
        attempt.attempts += 1
        self.attempt = attempt
        self.started_at = time.monotonic()
        self.hard_deadline = (
            None
            if wall_timeout_s is None
            else self.started_at
            + wall_timeout_s * HARD_KILL_FACTOR
            + HARD_KILL_GRACE_S
        )
        self.conn.send((attempt.trial.to_dict(), attempt.attempts))

    def shutdown(self) -> None:
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.conn.close()
        self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=2.0)

    def kill(self) -> None:
        self.process.kill()
        self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass


class ProcessPool:
    """A crash-isolating, deadline-enforcing pool of trial workers."""

    def __init__(
        self,
        workers: Optional[int] = None,
        policy: Optional[RetryPolicy] = None,
        wall_timeout_s: Optional[float] = None,
    ):
        self.n_workers = max(1, workers or os.cpu_count() or 1)
        self.policy = policy or RetryPolicy()
        self.wall_timeout_s = wall_timeout_s

    # ------------------------------------------------------------------
    def run(
        self,
        trials: Sequence[Trial],
        on_outcome: OutcomeCallback,
        stop: threading.Event,
    ) -> bool:
        """Execute every trial, delivering outcomes as they complete.

        Returns True when interrupted by ``stop`` (in-flight workers
        are killed; their trials and all undispatched ones get no
        outcome and remain pending for resume).
        """
        ctx = multiprocessing.get_context()
        queue: deque = deque(_Attempt(trial) for trial in trials)
        retries: List[_Attempt] = []
        workers = [
            _Worker(ctx) for _ in range(min(self.n_workers, len(trials)) or 1)
        ]
        interrupted = False
        try:
            while queue or retries or any(w.busy for w in workers):
                if stop.is_set():
                    interrupted = True
                    break
                self._dispatch_ready(workers, queue, retries)
                self._drain(ctx, workers, queue, retries, on_outcome)
                self._enforce_deadlines(
                    ctx, workers, queue, retries, on_outcome
                )
        finally:
            for worker in workers:
                if worker.busy or not worker.process.is_alive():
                    worker.kill()
                else:
                    worker.shutdown()
        return interrupted

    # ------------------------------------------------------------------
    def _next_attempt(
        self, queue: deque, retries: List[_Attempt]
    ) -> Optional[_Attempt]:
        now = time.monotonic()
        for i, attempt in enumerate(retries):
            if attempt.eligible_at <= now:
                return retries.pop(i)
        if queue:
            return queue.popleft()
        return None

    def _dispatch_ready(self, workers, queue, retries) -> None:
        for worker in workers:
            if worker.busy:
                continue
            if not worker.process.is_alive():
                # An idle worker died (should not happen — workers
                # only die mid-trial or on kill); replace it lazily.
                continue
            attempt = self._next_attempt(queue, retries)
            if attempt is None:
                return
            worker.dispatch(attempt, self.wall_timeout_s)

    def _drain(self, ctx, workers, queue, retries, on_outcome) -> None:
        busy = [w for w in workers if w.busy]
        if not busy:
            # Nothing in flight: backoff windows may still be open.
            if retries:
                time.sleep(0.01)
            return
        conns = {w.conn: w for w in busy}
        for conn in connection_wait(list(conns), timeout=0.05):
            worker = conns[conn]
            try:
                payload = conn.recv()
            except (EOFError, OSError):
                workers[workers.index(worker)] = self._on_crash(
                    ctx, worker, queue, retries, on_outcome
                )
                continue
            attempt = worker.attempt
            worker.attempt = None
            worker.hard_deadline = None
            kind = payload[0]
            if kind == "ok":
                _, _index, record, wall_s = payload
                if OBS.enabled:
                    _emit_trial_span(attempt.trial, "ok", wall_s)
                on_outcome(attempt.trial, record, wall_s, None)
            else:
                _, _index, failure_doc, wall_s = payload
                failure = TrialFailure.from_dict(failure_doc, lenient=True)
                failure = replace(failure, attempts=attempt.attempts)
                self._settle_failure(
                    attempt, failure, wall_s, queue, retries, on_outcome
                )

    def _enforce_deadlines(
        self, ctx, workers, queue, retries, on_outcome
    ) -> None:
        now = time.monotonic()
        for i, worker in enumerate(workers):
            overdue = (
                worker.busy
                and worker.hard_deadline is not None
                and now > worker.hard_deadline
            )
            died = worker.busy and not worker.process.is_alive()
            if not (overdue or died):
                continue
            if overdue:
                attempt = worker.attempt
                worker.kill()
                failure = TrialFailure(
                    outcome="timeout",
                    message=(
                        "worker killed after exceeding the wall-clock "
                        f"budget ({self.wall_timeout_s}s) without "
                        "reporting"
                    ),
                    attempts=attempt.attempts,
                )
                workers[i] = _Worker(ctx)
                if OBS.enabled:
                    OBS.metrics.inc("campaign.pool_rebuilds")
                self._settle_failure(
                    attempt, failure, 0.0, queue, retries, on_outcome
                )
            else:
                workers[i] = self._on_crash(
                    ctx, worker, queue, retries, on_outcome
                )

    def _on_crash(self, ctx, worker, queue, retries, on_outcome) -> _Worker:
        """A worker died mid-trial: record/retry, replenish the pool."""
        attempt = worker.attempt
        worker.kill()
        exitcode = worker.process.exitcode
        failure = crash_failure(
            attempts=attempt.attempts,
            detail=(
                "worker process died while executing this trial "
                f"(exit code {exitcode})"
            ),
        )
        self._settle_failure(
            attempt, failure, 0.0, queue, retries, on_outcome
        )
        if OBS.enabled:
            OBS.metrics.inc("campaign.pool_rebuilds")
        return _Worker(ctx)

    def _settle_failure(
        self, attempt, failure, wall_s, queue, retries, on_outcome
    ) -> None:
        if self.policy.should_retry(failure):
            delay_s = self.policy.delay_s(attempt.attempts)
            if OBS.enabled:
                _count_retry(delay_s)
            attempt.eligible_at = time.monotonic() + delay_s
            retries.append(attempt)
            return
        failure = self.policy.finalize(failure)
        if OBS.enabled:
            _emit_trial_span(attempt.trial, failure.outcome, wall_s)
        on_outcome(
            attempt.trial,
            failure_record(attempt.trial, failure),
            wall_s,
            None,
        )
