"""Campaign API: parallel, cached, resumable experiment execution.

The experiment layer the paper's figures actually need: every
parameter study — transaction rate vs. message length, goodput vs.
node count, recovery vs. glitch rate — is a :class:`Campaign`:

* a base :class:`~repro.scenario.spec.SystemSpec`,
* a workload (fixed or ``params -> Workload`` factory),
* an optional fault set (fixed or factory),
* and a :class:`Grid` of parameter axes (product / zip / chain /
  cross),

which **compiles** to an explicit list of content-addressed
:class:`Trial` documents, **executes** through a pluggable executor
(``"serial"`` or ``"process"`` via ``concurrent.futures``),
**memoises** every trial in an append-only, resumable
:class:`ResultStore` (key = SHA-256 of the trial documents), and
returns a queryable :class:`ResultSet`::

    from repro.campaign import Campaign, Grid

    rs = Campaign(
        spec, workload,
        grid=Grid.product(clock_hz=[100e3, 400e3, 1e6]),
        name="fig14",
    ).run(executor="process", workers=4, store="out/fig14")

    rs.series("clock_hz", "report.goodput_bps")   # figure = query
    rs.to_table()                                  # or a table
    rs.summary()                                   # cache accounting

Re-running the same campaign against the same store executes nothing:
every trial is served from cache.  Interrupt it halfway and only the
missing trials run next time.  ``python -m repro campaign
run/status/results`` exposes the same machinery over JSON campaign
documents (see EXPERIMENTS.md).

The legacy :func:`repro.scenario.runner.sweep` survives as a
deprecated shim over a serial campaign.
"""

from __future__ import annotations

from repro.campaign.campaign import (
    Campaign,
    CampaignStatus,
    EXECUTORS,
    load_campaign,
)
from repro.campaign.grid import GRID_KINDS, Grid, as_grid
from repro.campaign.resultset import AGGREGATIONS, ResultSet, TrialResult
from repro.campaign.store import RESULTS_FILENAME, ResultStore
from repro.campaign.trial import (
    Trial,
    canonical_json,
    derive_trial_seed,
    execute_trial,
    run_trial_document,
    trial_record,
)

__all__ = [
    "AGGREGATIONS",
    "Campaign",
    "CampaignStatus",
    "EXECUTORS",
    "GRID_KINDS",
    "Grid",
    "RESULTS_FILENAME",
    "ResultSet",
    "ResultStore",
    "Trial",
    "TrialResult",
    "as_grid",
    "canonical_json",
    "derive_trial_seed",
    "execute_trial",
    "load_campaign",
    "run_trial_document",
    "trial_record",
]
