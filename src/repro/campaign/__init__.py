"""Campaign API: parallel, cached, resumable experiment execution.

The experiment layer the paper's figures actually need: every
parameter study — transaction rate vs. message length, goodput vs.
node count, recovery vs. glitch rate — is a :class:`Campaign`:

* a base :class:`~repro.scenario.spec.SystemSpec`,
* a workload (fixed or ``params -> Workload`` factory),
* an optional fault set (fixed or factory),
* and a :class:`Grid` of parameter axes (product / zip / chain /
  cross),

which **compiles** to an explicit list of content-addressed
:class:`Trial` documents, **executes** through a pluggable,
failure-isolating executor (``"serial"``, or ``"process"`` via the
crash-surviving :class:`~repro.campaign.executors.ProcessPool`),
**memoises** every trial in an append-only, resumable, compactable
:class:`ResultStore` (key = SHA-256 of the trial documents), and
returns a queryable :class:`ResultSet`::

    from repro.campaign import Campaign, Grid

    rs = Campaign(
        spec, workload,
        grid=Grid.product(clock_hz=[100e3, 400e3, 1e6]),
        name="fig14",
    ).run(executor="process", workers=4, store="out/fig14")

    rs.series("clock_hz", "report.goodput_bps")   # figure = query
    rs.to_table()                                  # or a table
    rs.summary()                                   # cache accounting

Re-running the same campaign against the same store executes nothing:
every trial is served from cache.  Interrupt it halfway (SIGINT is a
graceful checkpoint, not a crash) and only the missing trials run
next time.  Failing trials — raised exceptions, wall-clock timeouts,
dead workers — become structured :class:`TrialFailure` records in the
same store (see :mod:`repro.campaign.failures`), retried under a
:class:`RetryPolicy` and quarantined when poisonous.  ``python -m
repro campaign run/status/results/compact`` exposes the same
machinery over JSON campaign documents (see EXPERIMENTS.md).

The legacy :func:`repro.scenario.runner.sweep` survives as a
deprecated shim over a serial campaign.
"""

from __future__ import annotations

from repro.campaign.campaign import (
    Campaign,
    CampaignStatus,
    EXECUTORS,
    load_campaign,
)
from repro.campaign.executors import ProcessPool, run_serial
from repro.campaign.failures import (
    FAILURE_OUTCOMES,
    RetryPolicy,
    TrialFailure,
    classify_exception,
    failure_record,
    record_is_quarantined,
    record_outcome,
)
from repro.campaign.grid import GRID_KINDS, Grid, as_grid
from repro.campaign.resultset import AGGREGATIONS, ResultSet, TrialResult
from repro.campaign.store import RESULTS_FILENAME, ResultStore
from repro.campaign.trial import (
    Trial,
    canonical_json,
    derive_trial_seed,
    execute_trial,
    run_trial_document,
    trial_record,
)

# Importing the chaos drill registers its workload kind; with the
# default fork start method, worker processes inherit the
# registration, so chaos documents deserialise everywhere.
import repro.campaign.chaos  # noqa: E402,F401  (registration side effect)

__all__ = [
    "AGGREGATIONS",
    "Campaign",
    "CampaignStatus",
    "EXECUTORS",
    "FAILURE_OUTCOMES",
    "GRID_KINDS",
    "Grid",
    "ProcessPool",
    "RESULTS_FILENAME",
    "ResultSet",
    "ResultStore",
    "RetryPolicy",
    "Trial",
    "TrialFailure",
    "TrialResult",
    "as_grid",
    "canonical_json",
    "classify_exception",
    "derive_trial_seed",
    "execute_trial",
    "failure_record",
    "load_campaign",
    "record_is_quarantined",
    "record_outcome",
    "run_serial",
    "run_trial_document",
    "trial_record",
]
