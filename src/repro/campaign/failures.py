"""Failure as data: structured trial-failure records and retry policy.

A fuzzing or fleet-scale campaign *wants* failing trials — a raised
exception, a run that blows its wall-clock budget, a worker process
that dies — and treats each as an observation, not a reason to abort.
This module defines the vocabulary:

* :class:`TrialFailure` — the schema-versioned failure document stored
  in the :class:`~repro.campaign.store.ResultStore` alongside success
  records: outcome class, exception type, message, a stable traceback
  digest, the attempt count and the quarantine flag;
* :class:`RetryPolicy` — bounded retries with exponential backoff for
  transient errors and worker crashes, and the quarantine rule that
  stops a poison trial from eating the campaign's budget forever;
* :func:`classify_exception` / :func:`failure_record` — the glue the
  executors use to turn a caught exception into a store record.

Outcome taxonomy (the record's ``outcome`` field):

============  =======================================================
``"ok"``      the trial executed and produced a report (implicit for
              records written before this schema grew the field)
``"error"``   trial execution raised an exception in-process
``"timeout"`` the trial exceeded its ``wall_timeout_s`` budget
              (cooperatively via
              :class:`~repro.core.errors.WallClockTimeout`, or by the
              process executor killing the worker)
``"crashed"`` the worker process died without reporting (``os._exit``,
              segfault, OOM kill)
============  =======================================================

Quarantine is orthogonal: a failure whose retryable class exhausted
``max_attempts`` is stamped ``quarantined: true``, and resumed
campaigns will not re-execute it even under ``retry_failed=True``
(only ``retry_quarantined=True`` does).
"""

from __future__ import annotations

import hashlib
import traceback as traceback_module
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.core.errors import (
    ConfigurationError,
    TransientTrialError,
    WallClockTimeout,
)
from repro.core.schema import REPORT_SCHEMA_VERSION

if TYPE_CHECKING:
    from repro.campaign.trial import Trial

#: Record outcomes that are failures (everything but ``"ok"``).
FAILURE_OUTCOMES = ("error", "timeout", "crashed")

#: Exception classes retried by default (environmental, not semantic).
TRANSIENT_ERRORS = (TransientTrialError, OSError, MemoryError)


def traceback_digest(exc: BaseException) -> str:
    """A short, stable fingerprint of an exception's traceback.

    Hashes the frame chain as ``module:function:line`` plus the
    exception type — *not* the formatted text, whose absolute file
    paths would make the digest differ between hosts and checkouts.
    """
    frames = [
        f"{frame.name}:{frame.lineno}"
        for frame in traceback_module.extract_tb(exc.__traceback__)
    ]
    material = "|".join([type(exc).__name__] + frames)
    return hashlib.sha256(material.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class TrialFailure:
    """One trial's structured failure outcome (JSON-round-trippable)."""

    outcome: str                 # "error" | "timeout" | "crashed"
    error_type: str = ""         # exception class name ("" for crashes)
    message: str = ""
    traceback_digest: str = ""
    attempts: int = 1
    quarantined: bool = False
    transient: bool = False

    def __post_init__(self) -> None:
        if self.outcome not in FAILURE_OUTCOMES:
            raise ConfigurationError(
                f"failure outcome must be one of {FAILURE_OUTCOMES}, "
                f"not {self.outcome!r}"
            )

    def to_dict(self) -> Dict:
        return {
            "outcome": self.outcome,
            "error_type": self.error_type,
            "message": self.message,
            "traceback_digest": self.traceback_digest,
            "attempts": self.attempts,
            "quarantined": self.quarantined,
            "transient": self.transient,
        }

    _KEYS = frozenset({
        "outcome", "error_type", "message", "traceback_digest",
        "attempts", "quarantined", "transient",
    })

    @classmethod
    def from_dict(cls, data: Dict, lenient: bool = False) -> "TrialFailure":
        if lenient:
            data = {k: v for k, v in data.items() if k in cls._KEYS}
        else:
            unknown = set(data) - cls._KEYS
            if unknown:
                raise ConfigurationError(
                    "unknown TrialFailure key(s): "
                    + ", ".join(sorted(unknown))
                )
        if "outcome" not in data:
            raise ConfigurationError(
                "a TrialFailure document needs an 'outcome'"
            )
        return cls(**data)

    def summary(self) -> str:
        label = self.outcome
        if self.quarantined:
            label += " (quarantined)"
        detail = self.error_type or "worker died"
        if self.message:
            detail += f": {self.message}"
        return (
            f"{label} after {self.attempts} attempt(s) — {detail}"
        )


def classify_exception(exc: BaseException, attempts: int = 1) -> TrialFailure:
    """Turn a caught trial exception into a :class:`TrialFailure`.

    :class:`WallClockTimeout` maps to the ``timeout`` outcome;
    everything else is an ``error``.  ``transient`` marks exception
    classes the retry policy may re-attempt.
    """
    outcome = "timeout" if isinstance(exc, WallClockTimeout) else "error"
    return TrialFailure(
        outcome=outcome,
        error_type=type(exc).__name__,
        message=str(exc)[:500],
        traceback_digest=traceback_digest(exc),
        attempts=attempts,
        transient=isinstance(exc, TRANSIENT_ERRORS),
    )


def crash_failure(attempts: int, detail: str = "") -> TrialFailure:
    """The failure document for a worker that died mid-trial."""
    return TrialFailure(
        outcome="crashed",
        message=detail or "worker process died while executing this trial",
        attempts=attempts,
        transient=True,
    )


def failure_record(trial: "Trial", failure: TrialFailure) -> Dict:
    """The store record for a failed trial — same envelope as
    :func:`~repro.campaign.trial.trial_record`, with a ``failure``
    document in place of the ``report``."""
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "key": trial.key,
        "params": dict(trial.params),
        "backend": trial.backend,
        "outcome": failure.outcome,
        "failure": failure.to_dict(),
    }


def record_outcome(record: Dict) -> str:
    """A record's outcome class; pre-failure-schema records (no
    ``outcome`` field) are successes by construction."""
    return record.get("outcome", "ok")


def record_is_quarantined(record: Dict) -> bool:
    failure = record.get("failure")
    return bool(failure) and bool(failure.get("quarantined"))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff, plus quarantine.

    ``max_attempts`` caps total attempts for retryable failures; the
    delay before attempt ``n+1`` is ``backoff_s * backoff_factor**(n-1)``.
    What is retryable:

    * transient in-process errors (``TRANSIENT_ERRORS``) when
      ``retry_transient`` — environmental, worth another try;
    * worker crashes when ``retry_crashed`` — could be an OOM kill or
      a genuinely poison trial; retrying distinguishes them;
    * wall-clock timeouts only when ``retry_timeout`` (off by
      default: a deterministic simulation that blew its budget once
      will blow it again, at full cost).

    Deterministic in-process errors are never retried — for a pure
    function of the trial documents, the exception *is* the result.
    A retryable failure that exhausts ``max_attempts`` is quarantined.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    retry_transient: bool = True
    retry_crashed: bool = True
    retry_timeout: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.backoff_factor < 1:
            raise ConfigurationError(
                "backoff_s must be >= 0 and backoff_factor >= 1"
            )

    def retryable(self, failure: TrialFailure) -> bool:
        """Is this failure *class* worth another attempt (ignoring
        the attempt budget)?"""
        if failure.outcome == "crashed":
            return self.retry_crashed
        if failure.outcome == "timeout":
            return self.retry_timeout
        return self.retry_transient and failure.transient

    def should_retry(self, failure: TrialFailure) -> bool:
        return (
            self.retryable(failure)
            and failure.attempts < self.max_attempts
        )

    def delay_s(self, attempts: int) -> float:
        """Backoff before the attempt *after* ``attempts`` tries."""
        return self.backoff_s * self.backoff_factor ** max(0, attempts - 1)

    def finalize(self, failure: TrialFailure) -> TrialFailure:
        """Stamp quarantine on a failure whose retryable class
        exhausted the attempt budget (the poison-trial rule)."""
        if (
            self.retryable(failure)
            and failure.attempts >= self.max_attempts
        ):
            return replace(failure, quarantined=True)
        return failure

    def to_dict(self) -> Dict:
        return {
            "max_attempts": self.max_attempts,
            "backoff_s": self.backoff_s,
            "backoff_factor": self.backoff_factor,
            "retry_transient": self.retry_transient,
            "retry_crashed": self.retry_crashed,
            "retry_timeout": self.retry_timeout,
        }

    _KEYS = frozenset({
        "max_attempts", "backoff_s", "backoff_factor",
        "retry_transient", "retry_crashed", "retry_timeout",
    })

    @classmethod
    def from_dict(cls, data: Dict, lenient: bool = False) -> "RetryPolicy":
        if lenient:
            data = {k: v for k, v in data.items() if k in cls._KEYS}
        else:
            unknown = set(data) - cls._KEYS
            if unknown:
                raise ConfigurationError(
                    "unknown RetryPolicy key(s): "
                    + ", ".join(sorted(unknown))
                )
        return cls(**data)


def normalize_retry(retry: Any) -> Optional[RetryPolicy]:
    """Coerce a ``retry=`` argument: None, a policy, or a dict."""
    if retry is None or isinstance(retry, RetryPolicy):
        return retry
    if isinstance(retry, dict):
        return RetryPolicy.from_dict(retry)
    raise ConfigurationError(
        f"retry must be a RetryPolicy or a dict, not {retry!r}"
    )
