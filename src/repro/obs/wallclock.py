"""The wall-timing module: every host-clock read in ``repro.obs``.

Observability wants wall durations (phase profiles, span timings) but
the repo's determinism contract forbids ambient clock reads in
simulation paths — trial records are content-addressed and
byte-compared, so a stray ``perf_counter`` in the wrong layer poisons
the cache.  The resolution is architectural: this module is the *only*
place the observability layer touches the host clock, it exposes only
*relative* readings (never ``time.time`` / ``datetime.now``), and the
``determinism`` lint pass whitelists exactly this file.  Everything
wall-derived downstream carries ``wall`` in its field or metric name,
so :func:`repro.obs.strip_wall_fields` can erase all host-time noise
from a trace in one sweep.
"""

from __future__ import annotations

import time


def wall_now() -> float:
    """A relative host timestamp in seconds (monotonic origin).

    Differences of two readings are wall durations; the absolute
    value is meaningless and must never be serialised as a date.
    """
    return time.perf_counter()
