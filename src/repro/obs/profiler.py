"""Opt-in per-phase wall profiling: record, summarize, diff.

A :class:`PhaseProfiler` accumulates ``(calls, wall seconds)`` per
named phase — ``compile``, ``plan_round``, ``execute``, ``serialize``
— the common vocabulary every backend reports in, so profiles recorded
on different tiers line up phase by phase.  ``python -m repro stats``
renders one profile as a table and two or more as a side-by-side diff
(the backend-comparison workflow: trace a scenario on edge, fast and
batch, then diff where the time went).

Call counts are deterministic (one ``plan_round`` per distinct round,
one ``execute`` per run); only the ``wall_s`` fields are host noise,
and they follow the repo-wide ``wall`` naming rule so
:func:`repro.obs.strip_wall_fields` erases them for byte comparisons.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.wallclock import wall_now

#: Canonical phase order for display; unknown phases sort after, by name.
PHASE_ORDER = ("compile", "plan_round", "execute", "serialize")


def _phase_sort_key(name: str) -> Tuple[int, str]:
    try:
        return (PHASE_ORDER.index(name), name)
    except ValueError:
        return (len(PHASE_ORDER), name)


class PhaseProfiler:
    """Accumulates wall time and call counts per phase name."""

    __slots__ = ("_calls", "_wall_s")

    def __init__(self) -> None:
        self._calls: Dict[str, int] = {}
        self._wall_s: Dict[str, float] = {}

    def add(self, name: str, wall_s: float, calls: int = 1) -> None:
        self._calls[name] = self._calls.get(name, 0) + calls
        self._wall_s[name] = self._wall_s.get(name, 0.0) + wall_s

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = wall_now()
        try:
            yield
        finally:
            self.add(name, wall_now() - start)

    # lint: disable=schema -- one-way profile record; stats reloads profiles as plain dicts via load_trace
    def to_dict(self) -> Dict:
        return {
            "phases": {
                name: {
                    "calls": self._calls[name],
                    "wall_s": self._wall_s[name],
                }
                for name in sorted(self._calls, key=_phase_sort_key)
            }
        }

    def __len__(self) -> int:
        return len(self._calls)


# ----------------------------------------------------------------------
# Summaries and diffs over recorded profiles.
# ----------------------------------------------------------------------
def profile_phases(profile: Dict) -> Dict[str, Dict]:
    """The ``phases`` mapping of a recorded profile document."""
    return profile.get("phases", {}) if profile else {}


def format_profile(label: str, profile: Dict) -> str:
    """One recorded profile as an aligned text table."""
    phases = profile_phases(profile)
    if not phases:
        return f"{label}: no profile recorded"
    total = sum(p.get("wall_s", 0.0) for p in phases.values())
    lines = [f"profile: {label} (total {total * 1e3:.3f} ms)"]
    for name in sorted(phases, key=_phase_sort_key):
        entry = phases[name]
        wall = entry.get("wall_s", 0.0)
        share = wall / total if total > 0 else 0.0
        lines.append(
            f"  {name:<12} {entry.get('calls', 0):>8} call(s) "
            f"{wall * 1e3:>10.3f} ms  {share:>6.1%}"
        )
    return "\n".join(lines)


def diff_profiles(
    labeled: List[Tuple[str, Dict]]
) -> Tuple[List[str], List[Tuple[str, ...]]]:
    """Side-by-side phase comparison across recorded profiles.

    Returns ``(header, rows)`` for table rendering: one row per phase
    (union of all profiles, canonical order), wall milliseconds per
    profile, and a ratio column against the first profile (the
    reference) when there are at least two.
    """
    names: List[str] = []
    for _label, profile in labeled:
        for name in profile_phases(profile):
            if name not in names:
                names.append(name)
    names.sort(key=_phase_sort_key)
    header = ["phase"]
    header += [f"{label} ms" for label, _ in labeled]
    header += [f"{label} calls" for label, _ in labeled]
    if len(labeled) >= 2:
        reference = labeled[0][0]
        header += [
            f"{label}/{reference}" for label, _ in labeled[1:]
        ]
    rows: List[Tuple[str, ...]] = []
    for name in names:
        walls: List[Optional[float]] = []
        calls: List[Optional[int]] = []
        for _label, profile in labeled:
            entry = profile_phases(profile).get(name)
            walls.append(None if entry is None else entry.get("wall_s", 0.0))
            calls.append(None if entry is None else entry.get("calls", 0))
        row: List[str] = [name]
        row += [
            "-" if wall is None else f"{wall * 1e3:.3f}"
            for wall in walls
        ]
        row += ["-" if c is None else str(c) for c in calls]
        if len(labeled) >= 2:
            base = walls[0]
            for wall in walls[1:]:
                if wall is None or base is None or base <= 0:
                    row.append("-")
                else:
                    row.append(f"{wall / base:.2f}x")
        rows.append(tuple(row))
    return header, rows
