"""CLI backends for ``python -m repro trace`` and ``python -m repro stats``.

``trace`` executes one declarative scenario under a scoped
:func:`~repro.obs.state.observe` session and records everything the
session collected — spans, metrics, per-phase profile — as a
deterministic JSONL trace file (plus an optional Chrome
``trace_event`` JSON for chrome://tracing / Perfetto).

``stats`` is the offline half: load one recorded trace and print its
phase profile, or load several (e.g. the same scenario traced on
``edge``, ``fast`` and ``batch``) and print a side-by-side phase
diff — the backend-comparison workflow EXPERIMENTS.md walks through.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List

from repro.obs.profiler import diff_profiles, format_profile
from repro.obs.state import observe
from repro.obs.tracer import (
    TraceDoc,
    canonical_line,
    chrome_trace,
    load_trace,
    trace_records,
    validate_trace,
)


def write_chrome(path: str, records: List[Dict]) -> None:
    """Write the Chrome ``trace_event`` export for a record stream."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(records), handle)
        handle.write("\n")


def cmd_trace(args) -> int:
    """Run a scenario with observability on; record the trace."""
    from repro.scenario import load_scenario, run

    spec, workload, _grid = load_scenario(args.scenario)
    faults = None
    if getattr(args, "faults", None):
        from repro.faults import load_faults

        faults = load_faults(args.faults)
    with observe() as session:
        report = run(
            spec, workload, backend=args.backend, faults=faults
        )
    label = args.label or (
        f"{spec.name or 'scenario'}:{report.backend}"
    )
    meta = {"label": label, "backend": report.backend}
    profile = session.profiler.to_dict() if session.profiler else None
    records = trace_records(
        session.tracer,
        meta=meta,
        metrics=session.metrics.snapshot() if session.metrics else None,
        profile=profile,
    )
    n_spans = sum(1 for r in records if r.get("type") == "span")
    with open(args.output, "w") as handle:
        for record in records:
            handle.write(canonical_line(record))
            handle.write("\n")
    print(
        f"recorded {n_spans} span(s) over {report.n_transactions} "
        f"transaction(s) [{report.backend} backend]"
    )
    print(f"wrote {len(records)} trace record(s) to {args.output}")
    if args.chrome:
        write_chrome(args.chrome, records)
        print(f"wrote Chrome trace JSON to {args.chrome} "
              "(open in chrome://tracing or Perfetto)")
    if profile:
        print()
        print(format_profile(label, profile))
    return 0


def _load_docs(paths: List[str]) -> List[TraceDoc]:
    docs = []
    for path in paths:
        try:
            docs.append(load_trace(path))
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"error: cannot load trace {path}: {exc}")
    return docs


def cmd_stats(args) -> int:
    """Summarize one recorded trace, or diff several."""
    from repro.analysis import format_table

    docs = _load_docs(args.traces)
    if args.json:
        print(json.dumps(
            [
                {
                    "label": doc.label,
                    "meta": doc.meta,
                    "n_spans": len(doc.spans),
                    "profile": doc.profile,
                    "metrics": doc.metrics,
                }
                for doc in docs
            ],
            indent=2,
        ))
        return 0
    problems: List[str] = []
    for path, doc in zip(args.traces, docs):
        doc_problems = validate_trace(
            [doc.meta] + doc.spans if doc.meta else doc.spans
        )
        problems.extend(f"{path}: {p}" for p in doc_problems)
        counters = doc.metrics.get("counters", {})
        print(
            f"{doc.label}: {len(doc.spans)} span(s), "
            f"{len(counters)} counter(s) [{path}]"
        )
    if problems:
        for problem in problems:
            print(f"warning: {problem}", file=sys.stderr)
    print()
    if len(docs) == 1:
        print(format_profile(docs[0].label, docs[0].profile))
        return 0
    header, rows = diff_profiles(
        [(doc.label, doc.profile) for doc in docs]
    )
    print(format_table(
        header, rows, title="Phase profile diff (first trace = reference)"
    ))
    return 0
