"""The observability switchboard: one guarded, process-global state.

Hot paths (the edge scheduler, the fast-path planner, the batch merge
loop, campaign executors) import the :data:`OBS` singleton and gate
every instrumentation site behind a single attribute check::

    from repro.obs.state import OBS
    ...
    if OBS.enabled:
        OBS.metrics.inc("batch.rounds")

Disabled (the default), each site costs exactly one boolean attribute
load — the strict-no-op contract the perf guard in
``benchmarks/test_obs_overhead.py`` enforces.  ``OBS.enabled`` is
True only between :func:`enable` and :func:`disable` (or inside an
:func:`observe` block); enabling always provisions a
:class:`~repro.obs.metrics.MetricsRegistry`, while the tracer and
profiler are opt-in facets, so guarded sites may rely on
``OBS.metrics`` being present whenever ``OBS.enabled`` is.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import ContextManager, Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import PhaseProfiler
from repro.obs.tracer import Tracer
from repro.obs.wallclock import wall_now

#: A single reusable no-op context for disabled phase() calls.
_NULL_CONTEXT: ContextManager[None] = nullcontext()


class Observability:
    """Process-global observability state (see module docstring)."""

    __slots__ = ("enabled", "tracer", "metrics", "profiler")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer: Optional[Tracer] = None
        self.metrics: Optional[MetricsRegistry] = None
        self.profiler: Optional[PhaseProfiler] = None

    # -- lifecycle -----------------------------------------------------
    def enable(
        self,
        trace: bool = True,
        metrics: bool = True,
        profile: bool = True,
    ) -> "Observability":
        """Turn observability on; returns self for reading results.

        ``metrics`` is effectively always on while enabled (guarded
        sites assume it); ``trace`` and ``profile`` opt into span
        collection and phase wall timing.
        """
        self.metrics = MetricsRegistry()
        self.tracer = Tracer() if trace else None
        self.profiler = PhaseProfiler() if profile else None
        self.enabled = True
        return self

    def disable(self) -> None:
        self.enabled = False
        self.tracer = None
        self.metrics = None
        self.profiler = None

    # -- guarded helpers (call only when ``enabled``) ------------------
    def phase(self, name: str, **args: object) -> ContextManager:
        """A profiled execution phase, as a tracer span (when tracing)
        plus a profiler accumulation (when profiling).  Callers guard
        with ``OBS.enabled``; this helper handles absent facets."""
        if not self.enabled:
            return _NULL_CONTEXT
        return self._phase(name, args)

    @contextmanager
    def _phase(self, name: str, args: dict) -> Iterator[None]:
        start = wall_now()
        if self.tracer is not None:
            with self.tracer.span(name, cat="phase", **args):
                yield
        else:
            yield
        if self.profiler is not None:
            self.profiler.add(name, wall_now() - start)

    @contextmanager
    def profiled(self, name: str, counter: str) -> Iterator[None]:
        """Profile-and-count a hot call *without* emitting a span
        (used for per-round work like ``plan_round``, where one span
        per round would bloat traces and break cross-backend span
        structure).  Call only when ``enabled``."""
        if self.metrics is not None:
            self.metrics.inc(counter)
        if self.profiler is None:
            yield
            return
        start = wall_now()
        try:
            yield
        finally:
            self.profiler.add(name, wall_now() - start)


class ObsSession:
    """What one :func:`observe` block collected.

    A detached handle onto the tracer / metrics / profiler that were
    live inside the block — still readable after the block exits and
    the global :data:`OBS` state is restored.
    """

    __slots__ = ("tracer", "metrics", "profiler")

    def __init__(
        self,
        tracer: Optional[Tracer],
        metrics: Optional[MetricsRegistry],
        profiler: Optional[PhaseProfiler],
    ) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler


#: The process-global switchboard every instrumented module imports.
OBS = Observability()


def enable(
    trace: bool = True, metrics: bool = True, profile: bool = True
) -> Observability:
    """Module-level convenience: ``repro.obs.enable()``."""
    return OBS.enable(trace=trace, metrics=metrics, profile=profile)


def disable() -> None:
    OBS.disable()


@contextmanager
def observe(
    trace: bool = True, metrics: bool = True, profile: bool = True
) -> Iterator[ObsSession]:
    """Scoped observability: enable on entry, restore the previous
    state on exit (the form tests and the CLI use).  Yields a
    detached :class:`ObsSession` whose collected tracer / metrics /
    profiler stay readable after the block exits."""
    previous = (OBS.enabled, OBS.tracer, OBS.metrics, OBS.profiler)
    OBS.enable(trace=trace, metrics=metrics, profile=profile)
    try:
        yield ObsSession(OBS.tracer, OBS.metrics, OBS.profiler)
    finally:
        OBS.enabled, OBS.tracer, OBS.metrics, OBS.profiler = previous
