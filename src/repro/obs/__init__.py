"""``repro.obs`` — unified tracing, metrics and profiling.

The observability plane over all three execution tiers and the
campaign layer:

* **spans** (:mod:`repro.obs.tracer`) — a deterministic structured
  trace of campaign > trial > run > bus-round > transaction nesting,
  written as JSONL and exportable as Chrome ``trace_event`` JSON;
* **metrics** (:mod:`repro.obs.metrics`) — labeled counters, gauges
  and histograms wired into the edge scheduler, the fast-path
  planner, the batch merge loop and the campaign executors;
* **profiles** (:mod:`repro.obs.profiler`) — per-phase wall timers
  (``compile`` / ``plan_round`` / ``execute`` / ``serialize``) that
  ``python -m repro trace`` records and ``python -m repro stats``
  summarizes and diffs across backends.

Everything is off by default and a strict no-op when disabled: hot
paths pay one boolean check (:data:`~repro.obs.state.OBS`'s
``enabled`` attribute), enforced by ``benchmarks/test_obs_overhead``.
Host-clock reads are confined to :mod:`repro.obs.wallclock`, and every
wall-derived field or metric carries ``wall`` in its name so
:func:`strip_wall_fields` reduces a trace to its deterministic,
byte-comparable content.

Typical use::

    from repro import obs

    with obs.observe() as session:
        report = run(spec, workload, backend="batch")
    obs.write_trace("trace.jsonl", session.tracer,
                    meta={"backend": report.backend},
                    metrics=session.metrics.snapshot(),
                    profile=session.profiler.to_dict())
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiler import (
    PHASE_ORDER,
    PhaseProfiler,
    diff_profiles,
    format_profile,
)
from repro.obs.state import (
    OBS,
    Observability,
    ObsSession,
    disable,
    enable,
    observe,
)
from repro.obs.tracer import (
    Span,
    TraceDoc,
    Tracer,
    chrome_trace,
    load_trace,
    span_structure,
    strip_wall_fields,
    trace_records,
    validate_trace,
    write_trace,
)
from repro.obs.wallclock import wall_now

__all__ = [
    "OBS",
    "Observability",
    "ObsSession",
    "enable",
    "disable",
    "observe",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "PHASE_ORDER",
    "diff_profiles",
    "format_profile",
    "Span",
    "Tracer",
    "TraceDoc",
    "chrome_trace",
    "load_trace",
    "span_structure",
    "strip_wall_fields",
    "trace_records",
    "validate_trace",
    "write_trace",
    "wall_now",
]
