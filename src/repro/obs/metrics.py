"""Labeled counters, gauges and histograms with deterministic snapshots.

The registry is deliberately tiny: instruments are created on first
use, keyed by ``name`` plus a canonical label encoding, and
:meth:`MetricsRegistry.snapshot` renders everything as one sorted,
JSON-ready dict — the form that goes into trace files and CLI output.

Determinism contract: any instrument whose value derives from the
host clock must carry ``wall`` in its name (e.g.
``campaign.retry_backoff_wall_s``) so trace comparisons can strip it;
everything else (event counts, cache hits, retries) is a pure
function of the executed documents and must snapshot identically
across identical runs.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple, Union

Number = Union[int, float]


def _encode(name: str, labels: Optional[Dict[str, object]]) -> str:
    """Canonical instrument key: ``name{k1=v1,k2=v2}`` with sorted
    labels, so snapshot keys never depend on call-site order."""
    if not labels:
        return name
    inner = ",".join(
        f"{k}={labels[k]}" for k in sorted(labels)
    )
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """A running distribution: count, sum, min, max.

    No bucket boundaries — the consumers here want phase totals and
    sanity ranges, and a fixed summary keeps snapshots deterministic
    and schema-stable.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def to_summary(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": 0 if self.min is None else self.min,
            "max": 0 if self.max is None else self.max,
        }


class MetricsRegistry:
    """On-demand instrument registry with a sorted dict snapshot."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors ------------------------------------------
    def counter(
        self, name: str, labels: Optional[Dict[str, object]] = None
    ) -> Counter:
        key = _encode(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(
        self, name: str, labels: Optional[Dict[str, object]] = None
    ) -> Gauge:
        key = _encode(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self, name: str, labels: Optional[Dict[str, object]] = None
    ) -> Histogram:
        key = _encode(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    # -- hot-path conveniences -----------------------------------------
    def inc(
        self,
        name: str,
        amount: Number = 1,
        labels: Optional[Dict[str, object]] = None,
    ) -> None:
        self.counter(name, labels).inc(amount)

    def set(
        self,
        name: str,
        value: Number,
        labels: Optional[Dict[str, object]] = None,
    ) -> None:
        self.gauge(name, labels).set(value)

    def observe(
        self,
        name: str,
        value: Number,
        labels: Optional[Dict[str, object]] = None,
    ) -> None:
        self.histogram(name, labels).observe(value)

    # -- presentation --------------------------------------------------
    def items(self) -> Iterator[Tuple[str, object]]:
        for key in sorted(self._counters):
            yield key, self._counters[key].value
        for key in sorted(self._gauges):
            yield key, self._gauges[key].value
        for key in sorted(self._histograms):
            yield key, self._histograms[key].to_summary()

    # lint: disable=schema -- one-way telemetry snapshot; metrics are re-measured, never loaded back into instruments
    def to_dict(self) -> Dict:
        return {
            "counters": {
                key: self._counters[key].value
                for key in sorted(self._counters)
            },
            "gauges": {
                key: self._gauges[key].value
                for key in sorted(self._gauges)
            },
            "histograms": {
                key: self._histograms[key].to_summary()
                for key in sorted(self._histograms)
            },
        }

    snapshot = to_dict

    def __len__(self) -> int:
        return (
            len(self._counters)
            + len(self._gauges)
            + len(self._histograms)
        )
