"""Span-based structured tracing: deterministic JSONL + Chrome JSON.

A :class:`Tracer` records a tree of nested spans —

    campaign > trial > run > (compile, execute, serialize,
                              bus-round > transaction)

— in emission order, with integer ids assigned sequentially so two
identical runs emit byte-identical span records.  Every span carries
two time domains, strictly separated by field naming:

* **deterministic fields** — ``t0_ps`` / ``dur_ps`` (integer sim
  time, for bus rounds and transactions) plus ``name`` / ``cat`` /
  ``args``; identical runs produce identical bytes;
* **wall fields** — ``wall_t0_s`` / ``wall_dur_s`` (relative host
  seconds from :mod:`repro.obs.wallclock`); these are measurement
  noise by definition, and :func:`strip_wall_fields` removes every
  key containing ``wall`` so traces can be byte-compared.

The JSONL trace file is the storage format (one canonical-JSON record
per line: a ``meta`` header, then ``span`` / ``metrics`` / ``profile``
records); :func:`chrome_trace` converts loaded records to the Chrome
``trace_event`` format for chrome://tracing or Perfetto, with wall
spans and sim spans on separate process tracks.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.schema import REPORT_SCHEMA_VERSION
from repro.obs.wallclock import wall_now

#: Span categories: ``phase`` (wall-timed execution phases),
#: ``sim`` (integer-ps bus activity), ``campaign`` (trial scheduling).
SPAN_CATEGORIES = ("phase", "sim", "campaign")


class Span:
    """One node of the trace tree.  Times may be sim-ps, wall, or both."""

    __slots__ = (
        "id", "parent", "name", "cat", "args",
        "t0_ps", "dur_ps", "wall_t0_s", "wall_dur_s",
    )

    def __init__(
        self,
        span_id: int,
        parent: Optional[int],
        name: str,
        cat: str,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.id = span_id
        self.parent = parent
        self.name = name
        self.cat = cat
        self.args: Dict[str, Any] = {} if args is None else dict(args)
        self.t0_ps: Optional[int] = None
        self.dur_ps: Optional[int] = None
        self.wall_t0_s: Optional[float] = None
        self.wall_dur_s: Optional[float] = None

    # lint: disable=schema -- one-way trace record; traces are read back as plain dicts by load_trace, never as Span objects
    def to_dict(self) -> Dict:
        return {
            "type": "span",
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "cat": self.cat,
            "t0_ps": self.t0_ps,
            "dur_ps": self.dur_ps,
            "args": self.args,
            "wall_t0_s": self.wall_t0_s,
            "wall_dur_s": self.wall_dur_s,
        }


class Tracer:
    """Collects spans with a nesting stack; emission order is stable."""

    __slots__ = ("spans", "_stack", "_next_id", "wall_epoch_s")

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._stack: List[int] = []
        self._next_id = 0
        #: Relative epoch for Chrome timestamps; all wall_t0_s values
        #: are offsets from process-local perf_counter origin.
        self.wall_epoch_s = wall_now()

    # -- core emission -------------------------------------------------
    def _open(
        self, name: str, cat: str, args: Optional[Dict[str, Any]]
    ) -> Span:
        parent = self._stack[-1] if self._stack else None
        span = Span(self._next_id, parent, name, cat, args)
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span.id)
        return span

    def _close(self, span: Span) -> None:
        popped = self._stack.pop()
        if popped != span.id:  # pragma: no cover - misuse guard
            raise RuntimeError(
                f"span {popped} closed out of order (expected {span.id})"
            )

    @contextmanager
    def span(
        self, name: str, cat: str = "phase", **args: Any
    ) -> Iterator[Span]:
        """A wall-timed span around a code region (phases, trials)."""
        span = self._open(name, cat, args)
        span.wall_t0_s = wall_now()
        try:
            yield span
        finally:
            span.wall_dur_s = wall_now() - span.wall_t0_s
            self._close(span)

    @contextmanager
    def sim_span(
        self,
        name: str,
        t0_ps: int,
        dur_ps: int,
        cat: str = "sim",
        **args: Any,
    ) -> Iterator[Span]:
        """A deterministic span on the simulated timeline (no wall
        reads — sim spans must be byte-identical across runs)."""
        span = self._open(name, cat, args)
        span.t0_ps = t0_ps
        span.dur_ps = dur_ps
        try:
            yield span
        finally:
            self._close(span)

    def emit(
        self,
        name: str,
        cat: str = "campaign",
        t0_ps: Optional[int] = None,
        dur_ps: Optional[int] = None,
        wall_dur_s: Optional[float] = None,
        **args: Any,
    ) -> Span:
        """A leaf span under the current parent (e.g. a trial outcome
        delivered by a worker process, whose execution happened
        elsewhere).  ``wall_dur_s``, when known, back-dates the span's
        wall start so Chrome renders it with its true width."""
        span = Span(
            self._next_id,
            self._stack[-1] if self._stack else None,
            name,
            cat,
            args,
        )
        self._next_id += 1
        span.t0_ps = t0_ps
        span.dur_ps = dur_ps
        if wall_dur_s is not None:
            span.wall_dur_s = wall_dur_s
            span.wall_t0_s = wall_now() - wall_dur_s
        self.spans.append(span)
        return span

    # -- presentation --------------------------------------------------
    def records(self) -> List[Dict]:
        return [span.to_dict() for span in self.spans]

    def __len__(self) -> int:
        return len(self.spans)


# ----------------------------------------------------------------------
# Trace files.
# ----------------------------------------------------------------------
@dataclass
class TraceDoc:
    """A loaded trace file, split by record type."""

    meta: Dict = field(default_factory=dict)
    spans: List[Dict] = field(default_factory=list)
    metrics: Dict = field(default_factory=dict)
    profile: Dict = field(default_factory=dict)

    @property
    def label(self) -> str:
        return str(
            self.meta.get("label")
            or self.meta.get("backend")
            or "trace"
        )


def canonical_line(record: Dict) -> str:
    """One trace record as canonical JSON (sorted keys, compact)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def trace_records(
    tracer: Optional[Tracer],
    meta: Optional[Dict] = None,
    metrics: Optional[Dict] = None,
    profile: Optional[Dict] = None,
) -> List[Dict]:
    """Assemble the full record stream for one trace file."""
    header: Dict[str, Any] = {
        "type": "meta",
        "schema_version": REPORT_SCHEMA_VERSION,
        "kind": "repro-trace",
    }
    if meta:
        header.update(meta)
    records = [header]
    if tracer is not None:
        records.extend(tracer.records())
    if metrics is not None:
        records.append({"type": "metrics", "values": metrics})
    if profile is not None:
        records.append({"type": "profile", **profile})
    return records


def write_trace(
    path: str,
    tracer: Optional[Tracer],
    meta: Optional[Dict] = None,
    metrics: Optional[Dict] = None,
    profile: Optional[Dict] = None,
) -> int:
    """Write a trace JSONL file; returns the number of records."""
    records = trace_records(tracer, meta, metrics, profile)
    with open(path, "w") as handle:
        for record in records:
            handle.write(canonical_line(record))
            handle.write("\n")
    return len(records)


def load_trace(path: str) -> TraceDoc:
    """Load a trace JSONL file back into its record groups."""
    doc = TraceDoc()
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "meta":
                doc.meta = record
            elif kind == "span":
                doc.spans.append(record)
            elif kind == "metrics":
                doc.metrics = record.get("values", {})
            elif kind == "profile":
                doc.profile = {
                    k: v for k, v in record.items() if k != "type"
                }
    return doc


def strip_wall_fields(value: Any) -> Any:
    """Recursively drop every dict key containing ``wall``.

    The single rule that separates the deterministic content of a
    trace (span names, nesting, sim times, event counts) from host-
    time noise: all wall-derived fields and metric names carry
    ``wall`` by convention (enforced by review and the determinism
    tests, which byte-compare stripped traces).
    """
    if isinstance(value, dict):
        return {
            k: strip_wall_fields(v)
            for k, v in value.items()
            if "wall" not in str(k)
        }
    if isinstance(value, list):
        return [strip_wall_fields(item) for item in value]
    return value


def validate_trace(records: List[Dict]) -> List[str]:
    """Well-formedness check for a span stream (the CI contract).

    Returns a list of problems (empty = well-formed): the header must
    come first, span ids must be unique and increasing, every parent
    must reference an already-emitted span, and categories must be
    known.
    """
    problems: List[str] = []
    if not records:
        return ["empty trace"]
    if records[0].get("type") != "meta":
        problems.append("first record is not the meta header")
    seen: Dict[int, Dict] = {}
    last_id = -1
    for record in records:
        if record.get("type") != "span":
            continue
        span_id = record.get("id")
        if not isinstance(span_id, int):
            problems.append(f"span without integer id: {record!r}")
            continue
        if span_id <= last_id:
            problems.append(
                f"span id {span_id} not strictly increasing"
            )
        last_id = max(last_id, span_id)
        if span_id in seen:
            problems.append(f"duplicate span id {span_id}")
        parent = record.get("parent")
        if parent is not None and parent not in seen:
            problems.append(
                f"span {span_id} references parent {parent} "
                "which was not emitted before it"
            )
        if record.get("cat") not in SPAN_CATEGORIES:
            problems.append(
                f"span {span_id} has unknown category "
                f"{record.get('cat')!r}"
            )
        seen[span_id] = record
    return problems


def span_structure(spans: List[Any]) -> Tuple:
    """The structural shape of a span tree: nested ``(name, children)``
    tuples in emission order, ignoring args and all timing.  Two
    backends executing the same scenario must produce equal
    structures (the cross-backend acceptance contract).  Accepts
    loaded span records or live :class:`Span` objects."""
    spans = [
        span.to_dict() if isinstance(span, Span) else span
        for span in spans
    ]
    children: Dict[Optional[int], List[Dict]] = {}
    for span in spans:
        children.setdefault(span.get("parent"), []).append(span)

    def build(span: Dict) -> Tuple:
        kids = children.get(span["id"], [])
        return (span["name"], tuple(build(kid) for kid in kids))

    return tuple(build(root) for root in children.get(None, []))


# ----------------------------------------------------------------------
# Chrome trace_event export.
# ----------------------------------------------------------------------
#: Synthetic pids separating the two time domains in chrome://tracing.
WALL_PID = 1
SIM_PID = 2


def chrome_trace(
    records: List[Dict], epoch_s: Optional[float] = None
) -> Dict:
    """Convert trace records to Chrome ``trace_event`` JSON.

    Wall-timed spans land on the ``wall`` process track (timestamps
    relative to the earliest wall start in the trace); sim spans land
    on the ``sim`` track at their simulated microsecond.  Zero-width
    events get a 1 us floor so they stay clickable.
    """
    spans = [r for r in records if r.get("type") == "span"]
    if epoch_s is None:
        starts = [
            s["wall_t0_s"] for s in spans
            if s.get("wall_t0_s") is not None
        ]
        epoch_s = min(starts) if starts else 0.0
    events: List[Dict] = [
        {
            "ph": "M", "name": "process_name", "pid": WALL_PID, "tid": 0,
            "args": {"name": "wall (phases & campaign)"},
        },
        {
            "ph": "M", "name": "process_name", "pid": SIM_PID, "tid": 0,
            "args": {"name": "sim (bus rounds, simulated time)"},
        },
    ]
    for span in spans:
        args = dict(span.get("args") or {})
        args["span_id"] = span["id"]
        if span.get("t0_ps") is not None:
            events.append({
                "ph": "X",
                "name": span["name"],
                "cat": span["cat"],
                "pid": SIM_PID,
                "tid": 1,
                "ts": span["t0_ps"] / 1e6,
                "dur": max(span.get("dur_ps") or 0, 1) / 1e6,
                "args": args,
            })
        if span.get("wall_t0_s") is not None:
            events.append({
                "ph": "X",
                "name": span["name"],
                "cat": span["cat"],
                "pid": WALL_PID,
                "tid": 1,
                "ts": (span["wall_t0_s"] - epoch_s) * 1e6,
                "dur": max(span.get("wall_dur_s") or 0.0, 1e-6) * 1e6,
                "args": args,
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}
