"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo [--mode {edge,fast}]``
    Run a three-chip transaction and print the waveform-level summary.
``figures``
    Print the reproduced Figure 9/10/14/15 series as ASCII charts.
``tables``
    Print the reproduced Tables 1-3.
``systems [--mode {edge,fast}]``
    Run both Section 6.3 microbenchmark systems end to end.
``vcd PATH``
    Simulate a traced transaction and write a VCD file to PATH.
``run SCENARIO.json [--backend ...] [--faults FAULTS.json] [--json] [--output PATH]``
    Execute a declarative scenario (spec + workload) and report.
    ``--faults`` injects a JSON fault set (forces the edge backend)
    and adds reliability analytics; ``--output`` writes the full
    report JSON to a file.
``sweep SCENARIO.json [--backend ...] [--faults FAULTS.json] [--json] [--output PATH]``
    Map the scenario's parameter grid over runs (figure-style study).
    ``--output`` writes one JSON line per sweep point (JSONL).
    Implemented as a serial, uncached campaign; prefer ``campaign``.
``campaign run CAMPAIGN.json [--store DIR] [--executor serial|process] [--workers N]``
    Execute a campaign document: compile its grid to trials, serve
    unchanged trials from the content-addressed store, execute the
    rest (optionally process-parallel), and report the ResultSet.
    Failures are data: ``--wall-timeout`` bounds each trial,
    ``--retry-failed`` / ``--retry-quarantined`` re-execute cached
    failures, and SIGINT/SIGTERM checkpoint-and-stop instead of
    aborting.  ``--progress auto|always|never`` controls the stderr
    progress line (CI-safe flushed lines off-tty); ``--trace-out`` /
    ``--chrome`` record the run with :mod:`repro.obs`.  Exits 1 when
    any trial failed, 130 when interrupted.
``campaign status CAMPAIGN.json [--store DIR]``
    Report how many of the campaign's trials the store already holds,
    split by outcome (ok / error / timeout / crashed), with retry
    totals and the quarantined trial list.
``trace SCENARIO.json [--backend ...] [-o TRACE.jsonl] [--chrome CHROME.json]``
    Execute a scenario with observability on and record the span /
    metrics / profile trace as deterministic JSONL (optionally also
    Chrome trace_event JSON for chrome://tracing or Perfetto).
``stats TRACE.jsonl [TRACE2.jsonl ...] [--json]``
    Summarize one recorded trace (phase profile table), or diff the
    phase profiles of several — e.g. the same scenario traced on
    edge, fast and batch.
``campaign results CAMPAIGN.json [--store DIR] [--where k=v ...] [--failed-only]``
    Query stored results without executing anything.  Exits 1 when
    any reported trial failed.
``campaign compact CAMPAIGN.json --store DIR``
    Rewrite the store file, dropping superseded duplicate records.
``serve --root DIR [--host H] [--port P] [--queue-depth N] [--rate R] [--burst B]``
    Run the campaign server (:mod:`repro.serve`): accept campaign
    submissions over HTTP, execute them through the shared
    content-addressed store (dedupe across clients and restarts),
    stream results as JSONL, and journal jobs so a restarted server
    resumes in-flight campaigns at trial boundaries.  Exits 130 on
    SIGINT/SIGTERM (after checkpointing).
``campaign submit CAMPAIGN.json [--server HOST:PORT] [--client NAME] [--watch]``
    Submit a campaign document to a running server; with ``--watch``
    follow it to completion (exit 1 if any trial failed).
``campaign watch JOB_ID [--server HOST:PORT] [--output PATH]``
    Follow a submitted job to a terminal state, optionally writing
    its streamed result records as JSONL.
``fuzz [--count N] [--seed S] [--faults-fraction F] [--repro-dir DIR] [--backends LIST]``
    Differential fuzzing: seeded scenarios cross-checked across the
    backend matrix (``--backends edge,fast,batch`` adds the compiled
    tier; default edge vs fast) plus invariant checks; divergent
    cases are minimized and written as JSON repros.  Exits 1 on any
    divergence (the CI contract).
``reliability``
    Run the recovery-rate-vs-glitch-rate robustness study and print
    the figure.
``lint [PATH] [--select PASS,...] [--format text|json] [--list]``
    Static analysis: AST-based determinism & invariant passes over
    the repro sources (see :mod:`repro.lint`).  Exits 0 on a clean
    tree, 1 with file:line findings.

Every subcommand documents its exit codes in its ``--help`` epilog;
the shared convention is 0 success, 1 findings/failures reported,
2 usage error, 130 interrupted (campaign runs checkpoint first).

Scenario documents are JSON files with ``system`` / ``workload``
(and, for ``sweep``, a ``sweep`` grid) keys; fault documents hold a
``FaultSpec.to_dict()`` object; campaign documents add ``grid`` /
``faults`` / ``backend`` keys — see :mod:`repro.scenario`,
:mod:`repro.faults`, :mod:`repro.campaign` and EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis import Series, ascii_chart, format_table
from repro.scenario.runner import BACKEND_REGISTRY, BACKENDS, backend_help


def _cmd_demo(args) -> int:
    from repro.core import Address, MBusSystem

    system = MBusSystem(mode=args.mode)
    system.add_mediator_node("cpu", short_prefix=0x1)
    system.add_node("sensor", short_prefix=0x2, power_gated=True)
    system.add_node("radio", short_prefix=0x3, power_gated=True)
    result = system.send("cpu", Address.short(0x2, 5), b"\x12\x34\x56\x78")
    print(f"cpu -> sensor (4 B): ok={result.ok}, "
          f"{result.clock_cycles}+{result.control_cycles} cycles, "
          f"{result.duration_ps / 1e6:.1f} us")
    print(f"sensor received {system.node('sensor').inbox[-1].payload.hex()} "
          f"and returned to sleep: {not system.node('sensor').is_fully_awake}")
    return 0


def _cmd_figures(_args) -> int:
    from repro.timing import max_clock_mhz_series
    from repro.timing.overhead import overhead_series
    from repro.timing.throughput import (
        parallel_goodput_series,
        transaction_rate_series,
    )

    print(ascii_chart(
        [Series.of("MBus max clock", max_clock_mhz_series())],
        x_label="nodes", y_label="MHz", title="Figure 9",
    ))
    print()
    print(ascii_chart(
        [Series.of(k, v) for k, v in overhead_series().items()],
        x_label="bytes", y_label="overhead bits", title="Figure 10",
    ))
    print()
    print(ascii_chart(
        [Series.of(f"{c/1e3:.0f} kHz", v)
         for c, v in sorted(transaction_rate_series().items())],
        x_label="bytes", y_label="trans/s", log_y=True, title="Figure 14",
    ))
    print()
    print(ascii_chart(
        [Series.of(f"{w} wire(s)", v)
         for w, v in sorted(parallel_goodput_series().items())],
        x_label="bytes", y_label="kbit/s", title="Figure 15",
    ))
    return 0


def _cmd_tables(_args) -> int:
    from repro.baselines.features import FEATURE_MATRIX
    from repro.power import MeasuredEnergyModel
    from repro.synthesis.area_model import table2_rows

    rows = [
        (n, f.io_pads(14), "Y" if f.synthesizable else "N",
         "Y" if f.power_aware else "N", f.overhead_note)
        for n, f in FEATURE_MATRIX.items()
    ]
    print(format_table(
        ["Bus", "Pads@14", "Synth", "PowerAware", "Overhead"],
        rows, title="Table 1 (abridged)",
    ))
    print()
    print(format_table(
        ["Module", "SLOC", "Gates", "Flops", "Paper um2", "Model um2"],
        table2_rows(), title="Table 2",
    ))
    print()
    model = MeasuredEnergyModel()
    print(format_table(
        ["Role", "pJ/bit"],
        [("TX (member+mediator)", model.roles.tx),
         ("RX", model.roles.rx),
         ("FWD", model.roles.fwd),
         ("Average", model.average_pj_per_bit())],
        title="Table 3",
    ))
    return 0


def _cmd_systems(args) -> int:
    from repro.systems import (
        ImagerSystem,
        SenseAndSendAnalysis,
        TemperatureSystem,
    )

    temp = TemperatureSystem(mode=args.mode)
    transactions = temp.run_round()
    print("sense & send:", ", ".join(
        f"{t.tx_node}->{'/'.join(t.rx_nodes)}" for t in transactions
    ))
    analysis = SenseAndSendAnalysis()
    print(f"  lifetime gain from direct routing: "
          f"{analysis.lifetime_gain_hours():.0f} hours")

    imager = ImagerSystem(rows=4, mode=args.mode)
    events = imager.motion_event()
    print(f"imager: motion event -> {len(events)} transactions, "
          f"{len(imager.received_rows())} rows at the radio")
    return 0


def _cmd_vcd(args) -> int:
    from repro.core import Address, MBusSystem

    system = MBusSystem(trace=True)
    system.add_mediator_node("m", short_prefix=0x1)
    system.add_node("a", short_prefix=0x2)
    system.add_node("b", short_prefix=0x3)
    system.send("a", Address.short(0x3, 5), b"\xCA\xFE")
    system.tracer.write_vcd(args.path)
    print(f"wrote {len(system.tracer.transitions)} transitions to {args.path}")
    return 0


def _load_cli_faults(args):
    if getattr(args, "faults", None) is None:
        return None
    from repro.faults import load_faults

    return load_faults(args.faults)


def _cmd_run(args) -> int:
    from repro.scenario import load_scenario, run

    spec, workload, _grid = load_scenario(args.scenario)
    faults = _load_cli_faults(args)
    report = run(spec, workload, backend=args.backend, faults=faults)
    document = report.to_dict()
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"wrote report to {args.output}")
    if args.json:
        print(json.dumps(document, indent=2))
    elif not args.output:
        print(report.summary())
    return 0


def _cmd_sweep(args) -> int:
    from repro.campaign import Campaign
    from repro.scenario import load_scenario
    from repro.scenario.runner import SweepPoint

    spec, workload, grid = load_scenario(args.scenario)
    faults = _load_cli_faults(args)
    if not grid:
        print(f"error: {args.scenario} has no 'sweep' grid; use 'run' "
              "for a single execution", file=sys.stderr)
        return 2
    # The old serial in-memory sweep, expressed as a campaign (see
    # the `campaign` command for the cached / parallel form).
    results = Campaign(
        spec=spec, workload=workload, grid=grid, faults=faults,
        backend=args.backend,
    ).run(executor="serial", resume=False, dedupe=False, keep_reports=True)
    points = [
        SweepPoint(params=dict(r.params), report=r.live) for r in results
    ]
    if not points:
        print(f"error: the sweep grid in {args.scenario} enumerates no "
              "points (a parameter has an empty value list)",
              file=sys.stderr)
        return 2
    if args.output:
        with open(args.output, "w") as handle:
            for p in points:
                handle.write(json.dumps(
                    {"params": p.params, "report": p.report.to_dict()}
                ))
                handle.write("\n")
        print(f"wrote {len(points)} sweep points to {args.output}")
    if args.json:
        print(json.dumps(
            [{"params": p.params, "report": p.report.to_dict()}
             for p in points],
            indent=2,
        ))
        return 0
    if args.output:
        return 0
    rows = [
        (
            ", ".join(f"{k}={v}" for k, v in p.params.items()),
            f"{p.report.n_ok}/{p.report.n_transactions}",
            f"{p.report.throughput_tps:,.0f}",
            f"{p.report.goodput_bps / 1e3:,.1f}",
            f"{p.report.energy_pj() / 1e3:.2f}",
        )
        for p in points
    ]
    print(format_table(
        ["Point", "OK", "txn/s", "kbit/s", "nJ"],
        rows,
        title=f"Sweep: {spec.name or 'scenario'} "
              f"[{points[0].report.backend} backend]",
    ))
    return 0


def _parse_where(pairs):
    import json as json_module

    where = {}
    for pair in pairs or ():
        key, sep, raw = pair.partition("=")
        if not sep:
            raise SystemExit(f"error: --where expects key=value, got {pair!r}")
        try:
            where[key] = json_module.loads(raw)
        except json_module.JSONDecodeError:
            where[key] = raw
    return where


def _campaign_result_document(campaign, results, store) -> dict:
    return {
        "name": campaign.name,
        "executor": results.executor,
        "n_trials": len(results),
        "executed": results.executed,
        "cached": results.cached,
        "cache_hit_rate": results.cache_hit_rate,
        "wall_s": results.wall_s,
        "failed": results.failed,
        "quarantined": results.quarantined,
        "interrupted": results.interrupted,
        "store": None if store is None else str(store),
        "results": results.records(),
    }


def _make_progress(mode: str):
    """The ``--progress`` callback for ``campaign run``.

    ``auto`` renders a live carriage-return line on a tty and falls
    back to throttled, explicitly flushed plain lines when stderr is
    not a tty (CI log capture, pipes) — a ``\\r`` line there sits
    invisible in the stream buffer until the run ends.  ``always``
    prints one flushed line per resolved trial; ``never`` disables
    progress output.
    """
    import time as time_module

    stream = sys.stderr
    if mode == "never":
        return None
    tty = bool(getattr(stream, "isatty", None) and stream.isatty())
    if mode == "auto" and tty:
        def live(done: int, total: int, _result) -> None:
            print(
                f"\rcampaign: {done}/{total} trial(s) complete",
                end="\n" if done == total else "",
                file=stream,
                flush=True,
            )
        return live
    throttle_s = 0.0 if mode == "always" else 1.0
    last = [float("-inf")]

    def lines(done: int, total: int, _result) -> None:
        now = time_module.monotonic()
        if done != total and now - last[0] < throttle_s:
            return
        last[0] = now
        print(
            f"campaign: {done}/{total} trial(s) complete",
            file=stream,
            flush=True,
        )
    return lines


def _cmd_campaign_run(args) -> int:
    from repro.campaign import load_campaign

    campaign = load_campaign(args.campaign)
    run_kwargs = dict(
        executor=args.executor,
        workers=args.workers,
        store=args.store,
        resume=not args.no_resume,
        wall_timeout_s=args.wall_timeout,
        retry_failed=args.retry_failed,
        retry_quarantined=args.retry_quarantined,
        install_signal_handlers=True,
        progress=_make_progress(args.progress),
    )
    if args.trace_out or args.chrome:
        from repro import obs

        with obs.observe() as session:
            results = campaign.run(**run_kwargs)
        meta = {
            "label": campaign.name or "campaign",
            "executor": args.executor,
        }
        records = obs.trace_records(
            session.tracer,
            meta=meta,
            metrics=session.metrics.snapshot(),
            profile=session.profiler.to_dict(),
        )
        if args.trace_out:
            from repro.obs.tracer import canonical_line

            with open(args.trace_out, "w") as handle:
                for record in records:
                    handle.write(canonical_line(record))
                    handle.write("\n")
            print(f"wrote {len(records)} trace record(s) to "
                  f"{args.trace_out}")
        if args.chrome:
            from repro.obs.cli import write_chrome

            write_chrome(args.chrome, records)
            print(f"wrote Chrome trace JSON to {args.chrome}")
    else:
        results = campaign.run(**run_kwargs)
    if args.output:
        results.to_jsonl(args.output)
        print(f"wrote {len(results)} result records to {args.output}")
    if args.json:
        print(json.dumps(
            _campaign_result_document(campaign, results, args.store),
            indent=2,
        ))
    elif not args.output:
        print(results.summary())
        print()
        print(results.to_table())
    if results.interrupted:
        return 130
    return 1 if results.failed else 0


def _cmd_campaign_status(args) -> int:
    from repro.campaign import load_campaign

    status = load_campaign(args.campaign).status(args.store)
    if args.json:
        print(json.dumps(status.to_dict(), indent=2))
    else:
        print(status.summary())
    return 0


def _cmd_campaign_results(args) -> int:
    from repro.campaign import ResultSet, ResultStore, TrialResult, load_campaign

    campaign = load_campaign(args.campaign)
    store = ResultStore(args.store, readonly=True)
    stored = [
        TrialResult(trial=trial, record=record, cached=True)
        for trial in campaign.trials()
        for record in (store.get(trial.key),)
        if record is not None
    ]
    results = ResultSet(stored, executor="store", name=campaign.name)
    where = _parse_where(args.where)
    if where:
        results = results.filter(**where)
    if args.failed_only:
        results = results.failures()
    if not stored:
        print(f"no stored results for this campaign in {args.store}",
              file=sys.stderr)
        return 1
    if args.output:
        results.to_jsonl(args.output)
        print(f"wrote {len(results)} result records to {args.output}")
    if args.json:
        print(json.dumps(results.records(), indent=2))
    elif not args.output:
        print(results.summary())
        print()
        print(results.to_table())
    return 1 if results.failed else 0


def _cmd_campaign_compact(args) -> int:
    from repro.campaign import ResultStore

    if args.store is None:
        print("error: campaign compact requires --store DIR",
              file=sys.stderr)
        return 2
    store = ResultStore(args.store, auto_compact=False)
    reclaimed = store.compact()
    if args.json:
        print(json.dumps({
            "store": str(args.store),
            "live_records": len(store),
            "reclaimed_lines": reclaimed,
        }))
    else:
        print(f"compacted {args.store}: {len(store)} live record(s), "
              f"{reclaimed} superseded line(s) reclaimed")
    return 0


def _cmd_campaign_submit(args) -> int:
    from repro.serve.cli import cmd_campaign_submit

    return cmd_campaign_submit(args)


def _cmd_campaign_watch(args) -> int:
    from repro.serve.cli import cmd_campaign_watch

    return cmd_campaign_watch(args)


def _cmd_campaign(args) -> int:
    return {
        "run": _cmd_campaign_run,
        "status": _cmd_campaign_status,
        "results": _cmd_campaign_results,
        "compact": _cmd_campaign_compact,
        "submit": _cmd_campaign_submit,
        "watch": _cmd_campaign_watch,
    }[args.campaign_command](args)


def _cmd_serve(args) -> int:
    from repro.serve.cli import cmd_serve

    return cmd_serve(args)


def _cmd_trace(args) -> int:
    from repro.obs.cli import cmd_trace

    return cmd_trace(args)


def _cmd_stats(args) -> int:
    from repro.obs.cli import cmd_stats

    return cmd_stats(args)


def _cmd_fuzz(args) -> int:
    from repro.diffcheck import fuzz

    backends = tuple(
        name.strip() for name in args.backends.split(",") if name.strip()
    )
    bad = [
        name for name in backends
        if name not in BACKEND_REGISTRY or BACKEND_REGISTRY[name].selector
    ]
    if bad or len(backends) < 2:
        concrete = ", ".join(
            name for name, info in BACKEND_REGISTRY.items()
            if not info.selector
        )
        print(
            f"fuzz: --backends needs two or more of: {concrete} "
            f"(got {args.backends!r})",
            file=sys.stderr,
        )
        return 2
    report = fuzz(
        count=args.count,
        seed=args.seed,
        faults_fraction=args.faults_fraction,
        repro_dir=None if args.no_repros else args.repro_dir,
        minimize=not args.no_minimize,
        invariants=not args.no_invariants,
        backends=backends,
        progress=(
            None if args.json
            else lambda line: print(f"divergent: {line}", file=sys.stderr)
        ),
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return report.exit_code


def _cmd_lint(args) -> int:
    from repro.lint import cli as lint_cli

    forwarded = []
    if args.path is not None:
        forwarded.append(args.path)
    if args.select is not None:
        forwarded.extend(["--select", args.select])
    if args.list_passes:
        forwarded.append("--list")
    forwarded.extend(["--format", args.format])
    return lint_cli.main(forwarded)


def _cmd_reliability(args) -> int:
    from repro.analysis.reliability import recovery_vs_glitch_rate

    rows = recovery_vs_glitch_rate(
        seed=args.seed,
        executor=args.executor,
        workers=args.workers,
        store=args.store,
    )
    print(format_table(
        ["glitch/s", "recovery", "intact", "corrupt", "lost", "failed txns",
         "interject"],
        [
            (
                f"{row['glitch_rate_hz']:g}",
                f"{row['recovery_rate']:.1%}",
                row["intact_deliveries"],
                row["corrupted_deliveries"],
                row["lost_deliveries"],
                f"{row['failed_transactions']}/{row['n_transactions']}",
                row["interjections"],
            )
            for row in rows
        ],
        title="Recovery rate vs. glitch rate (seeded EMI, edge backend)",
    ))
    print()
    print(ascii_chart(
        [Series.of(
            "recovery rate",
            [(row["glitch_rate_hz"], row["recovery_rate"]) for row in rows],
        )],
        x_label="glitches/s", y_label="recovered fraction",
        title="Robustness: intact deliveries under seeded wire glitches",
    ))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="MBus (ISCA 2015) reproduction tools"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    exit_ok = "exit codes: 0 success, 2 usage error"
    demo = sub.add_parser(
        "demo", help="run a three-chip transaction", epilog=exit_ok
    )
    sub.add_parser("figures", help="print reproduced figures",
                   epilog=exit_ok)
    sub.add_parser("tables", help="print reproduced tables",
                   epilog=exit_ok)
    systems = sub.add_parser(
        "systems", help="run the 6.3 microbenchmark systems",
        epilog=exit_ok,
    )
    for command in (demo, systems):
        command.add_argument(
            "--mode",
            choices=("edge", "fast"),
            default="edge",
            help="simulation backend (default: edge-accurate)",
        )
    vcd = sub.add_parser("vcd", help="write a waveform VCD",
                         epilog=exit_ok)
    vcd.add_argument("path")
    run_cmd = sub.add_parser(
        "run", help="execute a declarative scenario",
        epilog="exit codes: 0 success, 2 usage error (bad scenario "
               "or fault document)",
    )
    sweep_cmd = sub.add_parser(
        "sweep", help="map a scenario's parameter grid over runs",
        epilog="exit codes: 0 success, 2 usage error (missing or "
               "empty sweep grid)",
    )
    for command in (run_cmd, sweep_cmd):
        command.add_argument("scenario", help="path to a scenario JSON file")
        command.add_argument(
            "--backend",
            choices=BACKENDS,
            default="auto",
            help=f"simulation backend (default: auto). {backend_help()}",
        )
        command.add_argument(
            "--faults",
            metavar="FAULTS.json",
            help="inject a JSON fault set (forces the edge backend and "
                 "adds reliability analytics)",
        )
        command.add_argument(
            "--json", action="store_true", help="emit machine-readable JSON"
        )
        command.add_argument(
            "--output",
            metavar="PATH",
            help="write results to a file (run: JSON report; sweep: one "
                 "JSON line per point)",
        )
    campaign_cmd = sub.add_parser(
        "campaign",
        help="compile, execute and query cached experiment campaigns",
        epilog="exit codes: per subcommand (see its --help); common "
               "convention: 0 success, 1 failed trials reported, "
               "2 usage error, 130 interrupted",
    )
    campaign_sub = campaign_cmd.add_subparsers(
        dest="campaign_command", required=True
    )
    campaign_run = campaign_sub.add_parser(
        "run", help="execute a campaign document (cached, resumable)",
        epilog="exit codes: 0 all trials ok, 1 any trial failed, "
               "2 usage error, 130 interrupted (checkpointed; rerun "
               "to resume)",
    )
    campaign_status = campaign_sub.add_parser(
        "status", help="report cache coverage for a campaign",
        epilog="exit codes: 0 success, 2 usage error",
    )
    campaign_results = campaign_sub.add_parser(
        "results", help="query stored results without executing",
        epilog="exit codes: 0 all reported trials ok, 1 any reported "
               "trial failed or no stored results, 2 usage error",
    )
    campaign_compact = campaign_sub.add_parser(
        "compact",
        help="rewrite the store, dropping superseded duplicate records",
        epilog="exit codes: 0 success, 2 usage error (--store is "
               "required)",
    )
    for command in (
        campaign_run, campaign_status, campaign_results, campaign_compact,
    ):
        command.add_argument(
            "campaign", help="path to a campaign JSON document"
        )
        command.add_argument(
            "--store",
            metavar="DIR",
            help="ResultStore directory (content-addressed trial cache); "
                 "omitted = in-memory scratch store",
        )
        command.add_argument(
            "--json", action="store_true", help="emit machine-readable JSON"
        )
    campaign_run.add_argument(
        "--executor",
        choices=("serial", "process"),
        default="serial",
        help="trial executor (default: serial)",
    )
    campaign_run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for --executor process",
    )
    campaign_run.add_argument(
        "--no-resume",
        action="store_true",
        help="re-execute every trial even when the store has it",
    )
    campaign_run.add_argument(
        "--wall-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per trial; a trial past it is recorded "
             "as outcome=timeout instead of hanging the campaign",
    )
    campaign_run.add_argument(
        "--retry-failed",
        action="store_true",
        help="re-execute trials whose cached record is a failure "
             "(quarantined trials stay parked)",
    )
    campaign_run.add_argument(
        "--retry-quarantined",
        action="store_true",
        help="re-execute every cached failure, quarantined ones included",
    )
    campaign_run.add_argument(
        "--progress",
        choices=("auto", "always", "never"),
        default="auto",
        help="trial progress on stderr: auto = live line on a tty, "
             "throttled flushed lines otherwise (CI-safe); always = "
             "one flushed line per trial; never = silent "
             "(default: auto)",
    )
    campaign_run.add_argument(
        "--trace-out",
        metavar="TRACE.jsonl",
        help="record the run with repro.obs and write the span/metrics/"
             "profile trace as JSONL",
    )
    campaign_run.add_argument(
        "--chrome",
        metavar="CHROME.json",
        help="also write the Chrome trace_event JSON "
             "(chrome://tracing, Perfetto)",
    )
    campaign_results.add_argument(
        "--where",
        action="append",
        metavar="KEY=VALUE",
        help="filter rows by parameter equality (repeatable; value "
             "parsed as JSON, falling back to string)",
    )
    campaign_results.add_argument(
        "--failed-only",
        action="store_true",
        help="show only trials whose stored record is a failure",
    )
    campaign_submit = campaign_sub.add_parser(
        "submit",
        help="submit a campaign document to a running campaign server",
        epilog="exit codes: 0 accepted (with --watch: all trials ok), "
               "1 rejected or failed trials, 2 usage error, "
               "130 interrupted (the job keeps running server-side)",
    )
    campaign_submit.add_argument(
        "campaign", help="path to a campaign JSON document"
    )
    campaign_watch = campaign_sub.add_parser(
        "watch",
        help="follow a submitted job to completion, optionally "
             "streaming its results",
        epilog="exit codes: 0 job done with no failed trials, 1 failed "
               "trials or watch timeout, 2 usage error or unknown job, "
               "130 interrupted",
    )
    campaign_watch.add_argument(
        "job_id", help="job id returned by 'campaign submit'"
    )
    for command in (campaign_submit, campaign_watch):
        command.add_argument(
            "--server",
            default="127.0.0.1:8642",
            metavar="HOST:PORT",
            help="campaign server address (default: 127.0.0.1:8642)",
        )
        command.add_argument(
            "--timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="give up watching after this long (the job itself "
                 "keeps running server-side)",
        )
        command.add_argument(
            "--output",
            metavar="PATH",
            help="write the job's streamed result records as JSONL",
        )
        command.add_argument(
            "--json", action="store_true", help="emit machine-readable JSON"
        )
    campaign_submit.add_argument(
        "--client",
        default="anonymous",
        metavar="NAME",
        help="client token for rate limiting and dedupe accounting "
             "(default: anonymous)",
    )
    campaign_submit.add_argument(
        "--executor",
        choices=("serial", "process"),
        default="serial",
        help="server-side trial executor (default: serial)",
    )
    campaign_submit.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for --executor process",
    )
    campaign_submit.add_argument(
        "--wall-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="server-side wall-clock budget per trial",
    )
    campaign_submit.add_argument(
        "--retry-failed",
        action="store_true",
        help="re-execute trials whose cached record is a failure",
    )
    campaign_submit.add_argument(
        "--retry-quarantined",
        action="store_true",
        help="re-execute every cached failure, quarantined ones included",
    )
    campaign_submit.add_argument(
        "--watch",
        action="store_true",
        help="follow the job to completion (like 'campaign watch')",
    )
    for command in (campaign_run, campaign_results):
        command.add_argument(
            "--output",
            metavar="PATH",
            help="write one canonical record per line (JSONL)",
        )
    serve_cmd = sub.add_parser(
        "serve",
        help="run the campaign server (submissions over HTTP, shared "
             "dedupe store, streaming results, restart survival)",
        epilog="exit codes: 0 clean shutdown, 2 usage error (bad root "
               "or bind failure), 130 stopped by SIGINT/SIGTERM "
               "(checkpointed; restart to resume in-flight jobs)",
    )
    serve_cmd.add_argument(
        "--root",
        metavar="DIR",
        default=None,
        help="server state directory (results store + job journal); "
             "omitted = in-memory (no restart survival)",
    )
    serve_cmd.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    serve_cmd.add_argument(
        "--port", type=int, default=8642,
        help="port to bind (default: 8642; 0 = ephemeral)",
    )
    serve_cmd.add_argument(
        "--queue-depth", type=int, default=16, metavar="N",
        help="max queued jobs across all clients before 503 "
             "(default: 16)",
    )
    serve_cmd.add_argument(
        "--rate", type=float, default=10.0, metavar="PER_S",
        help="per-client sustained submissions/s before 429 "
             "(default: 10)",
    )
    serve_cmd.add_argument(
        "--burst", type=float, default=20.0, metavar="N",
        help="per-client submission burst size (default: 20)",
    )
    serve_cmd.add_argument(
        "--no-obs", action="store_true",
        help="disable repro.obs metrics/profiling (empties /v1/metrics)",
    )
    trace_cmd = sub.add_parser(
        "trace",
        help="execute a scenario with observability on and record "
             "the span/metrics/profile trace",
        epilog="exit codes: 0 success, 2 usage error (bad scenario "
               "or fault document)",
    )
    trace_cmd.add_argument("scenario", help="path to a scenario JSON file")
    trace_cmd.add_argument(
        "--backend",
        choices=BACKENDS,
        default="auto",
        help=f"simulation backend (default: auto). {backend_help()}",
    )
    trace_cmd.add_argument(
        "--faults",
        metavar="FAULTS.json",
        help="inject a JSON fault set (forces the edge backend)",
    )
    trace_cmd.add_argument(
        "-o", "--output",
        metavar="TRACE.jsonl",
        default="trace.jsonl",
        help="trace JSONL output path (default: trace.jsonl)",
    )
    trace_cmd.add_argument(
        "--chrome",
        metavar="CHROME.json",
        help="also write the Chrome trace_event JSON "
             "(chrome://tracing, Perfetto)",
    )
    trace_cmd.add_argument(
        "--label",
        default=None,
        help="trace label for stats diffs (default: the scenario name)",
    )
    stats_cmd = sub.add_parser(
        "stats",
        help="summarize a recorded trace, or diff phase profiles "
             "across several (e.g. one per backend)",
        epilog="exit codes: 0 success, 2 usage error (unreadable "
               "trace file)",
    )
    stats_cmd.add_argument(
        "traces", nargs="+",
        help="trace JSONL file(s) recorded by 'repro trace' or "
             "'repro campaign run --trace-out'",
    )
    stats_cmd.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    fuzz_cmd = sub.add_parser(
        "fuzz",
        help="differential fuzzing across the backend matrix "
             "(edge vs fast by default) plus invariant checks",
        epilog="exit codes: 0 no divergence, 1 divergence found "
               "(repros written unless --no-repros), 2 usage error",
    )
    fuzz_cmd.add_argument(
        "--count", type=int, default=100,
        help="number of seeded scenarios (default: 100)",
    )
    fuzz_cmd.add_argument(
        "--seed", type=int, default=0, help="generator seed (default: 0)"
    )
    fuzz_cmd.add_argument(
        "--faults-fraction", type=float, default=0.25,
        help="fraction of scenarios drawing a fault set (default: 0.25)",
    )
    fuzz_cmd.add_argument(
        "--repro-dir", default="fuzz_repros", metavar="DIR",
        help="where minimized divergence repros are written "
             "(default: fuzz_repros)",
    )
    fuzz_cmd.add_argument(
        "--no-repros", action="store_true",
        help="do not write repro files for divergent scenarios",
    )
    fuzz_cmd.add_argument(
        "--no-minimize", action="store_true",
        help="record raw divergent scenarios instead of shrinking them",
    )
    fuzz_cmd.add_argument(
        "--backends", default="edge,fast", metavar="LIST",
        help="comma-separated backend matrix; the first entry is the "
             "reference every other backend is diffed against "
             "(e.g. edge,fast,batch; default: edge,fast)",
    )
    fuzz_cmd.add_argument(
        "--no-invariants", action="store_true",
        help="skip replay-determinism and empty-fault-spec checks "
             "(cross-backend diff only; roughly 3x faster)",
    )
    fuzz_cmd.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    reliability_cmd = sub.add_parser(
        "reliability",
        help="run the recovery-vs-glitch-rate robustness study",
        epilog=exit_ok,
    )
    reliability_cmd.add_argument(
        "--seed", type=int, default=7, help="EMI seed (default: 7)"
    )
    reliability_cmd.add_argument(
        "--executor",
        choices=("serial", "process"),
        default="serial",
        help="campaign executor for the study (default: serial)",
    )
    reliability_cmd.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size for --executor process",
    )
    reliability_cmd.add_argument(
        "--store", metavar="DIR", default=None,
        help="ResultStore directory to memoise the study's trials",
    )
    lint_cmd = sub.add_parser(
        "lint",
        help="static analysis: determinism & invariant passes over "
             "the repro sources",
        epilog="exit codes: 0 clean, 1 findings reported, 2 usage "
               "error",
    )
    lint_cmd.add_argument(
        "path", nargs="?", default=None,
        help="package root to lint (default: the installed repro "
             "package)",
    )
    lint_cmd.add_argument(
        "--select", metavar="PASS[,PASS...]", default=None,
        help="run only the named passes (default: all)",
    )
    lint_cmd.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="findings output format (default: text)",
    )
    lint_cmd.add_argument(
        "--list", dest="list_passes", action="store_true",
        help="list registered passes and exit",
    )
    args = parser.parse_args(argv)
    return {
        "demo": _cmd_demo,
        "figures": _cmd_figures,
        "tables": _cmd_tables,
        "systems": _cmd_systems,
        "vcd": _cmd_vcd,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "campaign": _cmd_campaign,
        "trace": _cmd_trace,
        "stats": _cmd_stats,
        "fuzz": _cmd_fuzz,
        "reliability": _cmd_reliability,
        "lint": _cmd_lint,
        "serve": _cmd_serve,
    }[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
