"""Gate-count and area model for MBus components (Table 2).

The paper synthesises MBus for an industrial 180 nm process and
reports Verilog SLOC, gate count, flip-flop count, and area for each
module, alongside OpenCores SPI/I2C masters and Lee's I2C variant
synthesised for the same process.  We reproduce the table from a
published-values database and fit a two-parameter area model

    area = a * gates + b * flip_flops

by least squares across the designs, exposing how well simple
gate-equivalent costing explains the published areas (different
designs have different cell mixes, so the fit has real residuals —
reported rather than hidden).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ModuleSynthesis:
    """One row of Table 2."""

    name: str
    verilog_sloc: int
    gates: int
    flip_flops: int
    area_um2: float           # published 180 nm area
    optional: bool = False
    note: str = ""

    def area_estimate_um2(self, library: "AreaLibrary") -> float:
        return library.estimate(self.gates, self.flip_flops)

    def area_error_fraction(self, library: "AreaLibrary") -> float:
        if self.area_um2 == 0:
            return 0.0
        return (self.area_estimate_um2(library) - self.area_um2) / self.area_um2


@dataclass(frozen=True)
class AreaLibrary:
    """Per-primitive area coefficients (um^2) for one process."""

    um2_per_gate: float
    um2_per_flip_flop: float
    process: str = "industrial 180 nm"

    def estimate(self, gates: int, flip_flops: int) -> float:
        return self.um2_per_gate * gates + self.um2_per_flip_flop * flip_flops


#: Table 2, MBus rows (values measured on the temperature-sensor chip).
MBUS_MODULES: Dict[str, ModuleSynthesis] = {
    "bus_controller": ModuleSynthesis(
        "Bus Controller", 947, 1314, 207, 27_376.0,
        note="required by every design",
    ),
    "sleep_controller": ModuleSynthesis(
        "Sleep Controller", 130, 25, 4, 3_150.0, optional=True,
        note="always-on wakeup frontend",
    ),
    "wire_controller": ModuleSynthesis(
        "Wire Controller", 50, 7, 0, 882.0, optional=True,
        note="always-on forwarding mux",
    ),
    "interrupt_controller": ModuleSynthesis(
        "Interrupt Controller", 58, 21, 3, 2_646.0, optional=True,
        note="null-transaction generator",
    ),
}

#: Table 2 totals: the full MBus (with a small integration overhead).
MBUS_TOTAL = ModuleSynthesis(
    "MBus total", 1185, 1367, 214, 37_200.0,
    note="includes integration overhead area",
)

#: Table 2, comparison rows.
OTHER_BUSES: Dict[str, ModuleSynthesis] = {
    "spi_master": ModuleSynthesis(
        "SPI Master (OpenCores)", 516, 1004, 229, 37_068.0,
        note="synthesized for the same 180 nm process",
    ),
    "i2c_master": ModuleSynthesis(
        "I2C Master (OpenCores)", 720, 396, 153, 19_813.0,
        note="synthesized for the same 180 nm process",
    ),
    "lee_i2c": ModuleSynthesis(
        "Lee I2C [14]", 897, 908, 278, 33_703.0,
        note="hand-tuned ratioed logic",
    ),
}


def all_designs() -> List[ModuleSynthesis]:
    return list(MBUS_MODULES.values()) + list(OTHER_BUSES.values())


def mbus_component_sum_um2() -> float:
    """Sum of the four MBus modules (excludes integration overhead)."""
    return sum(m.area_um2 for m in MBUS_MODULES.values())


def mbus_total_area_um2() -> float:
    return MBUS_TOTAL.area_um2


def integration_overhead_um2() -> float:
    """Table 2 footnote: total minus the component sum."""
    return mbus_total_area_um2() - mbus_component_sum_um2()


def mbus_required_only_area_um2() -> float:
    """Non-power-gated designs need only the Bus Controller."""
    return MBUS_MODULES["bus_controller"].area_um2


def fit_area_library(
    designs: Optional[List[ModuleSynthesis]] = None,
) -> AreaLibrary:
    """Least-squares fit of (um2/gate, um2/flop) over published rows.

    Solves the 2x2 normal equations directly (no numpy dependency in
    the library core).  Coefficients are clamped non-negative.
    """
    rows = designs if designs is not None else all_designs()
    # Normal equations for [g f] [a b]^T = area.
    sgg = sum(r.gates * r.gates for r in rows)
    sgf = sum(r.gates * r.flip_flops for r in rows)
    sff = sum(r.flip_flops * r.flip_flops for r in rows)
    sga = sum(r.gates * r.area_um2 for r in rows)
    sfa = sum(r.flip_flops * r.area_um2 for r in rows)
    det = sgg * sff - sgf * sgf
    if det == 0:
        raise ValueError("degenerate design set; cannot fit")
    a = (sga * sff - sfa * sgf) / det
    b = (sfa * sgg - sga * sgf) / det
    if a < 0 or b < 0:
        # Fall back to a single-coefficient gate-equivalent model.
        total_cells = sum(r.gates + r.flip_flops for r in rows)
        total_area = sum(r.area_um2 for r in rows)
        per_cell = total_area / total_cells
        return AreaLibrary(um2_per_gate=per_cell, um2_per_flip_flop=per_cell)
    return AreaLibrary(um2_per_gate=a, um2_per_flip_flop=b)


def table2_rows(
    library: Optional[AreaLibrary] = None,
) -> List[Tuple[str, int, int, int, float, float]]:
    """(name, sloc, gates, flops, published um2, modelled um2) rows."""
    lib = library or fit_area_library()
    rows = []
    for module in all_designs():
        rows.append(
            (
                module.name,
                module.verilog_sloc,
                module.gates,
                module.flip_flops,
                module.area_um2,
                module.area_estimate_um2(lib),
            )
        )
    return rows
