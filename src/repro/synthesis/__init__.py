"""Synthesis area estimation for Table 2."""

from repro.synthesis.area_model import (
    AreaLibrary,
    MBUS_MODULES,
    MBUS_TOTAL,
    ModuleSynthesis,
    OTHER_BUSES,
    fit_area_library,
    mbus_total_area_um2,
)

__all__ = [
    "AreaLibrary",
    "MBUS_MODULES",
    "MBUS_TOTAL",
    "ModuleSynthesis",
    "OTHER_BUSES",
    "fit_area_library",
    "mbus_total_area_um2",
]
