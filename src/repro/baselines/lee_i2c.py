"""Lee et al.'s I2C variant [14] (Sections 2.2 and 2.5).

Lee's "I2C-like" bus replaces the pull-up with active drive plus a
low-energy bus-keeper circuit, reaching 88 pJ/bit — four times MBus —
at the cost of (a) a local clock running five times faster than the
bus clock, (b) hand-tuned, process-specific ratioed logic (it is not
synthesizable), and (c) a wakeup sequence (start bit followed shortly
by a stop bit) whose timing varies chip to chip.
"""

from __future__ import annotations

from dataclasses import dataclass

LEE_PJ_PER_BIT = 88.0            # Section 2.2
LEE_INTERNAL_CLOCK_RATIO = 5     # local clock 5x the bus clock
LEE_SYNTHESIZABLE = False        # hand-tuned ratioed logic


@dataclass(frozen=True)
class LeeWakeupTiming:
    """Per-chip wakeup timing (Section 2.5): the interval between the
    start and stop bits of the wakeup sequence, and the delay until
    the chip is awake, vary chip to chip and must be hand-tuned with
    conservative estimates."""

    start_stop_gap_us: float
    awake_after_stop_us: float

    def conservative_wakeup_us(self, margin: float = 1.5) -> float:
        return margin * (self.start_stop_gap_us + self.awake_after_stop_us)


class LeeI2C:
    """Protocol/energy model of the Lee bus (I2C framing retained)."""

    def __init__(
        self,
        pj_per_bit: float = LEE_PJ_PER_BIT,
        internal_clock_ratio: int = LEE_INTERNAL_CLOCK_RATIO,
    ):
        self.pj_per_bit = pj_per_bit
        self.internal_clock_ratio = internal_clock_ratio
        self.synthesizable = LEE_SYNTHESIZABLE

    @staticmethod
    def overhead_bits(n_bytes: int) -> int:
        """I2C framing is retained: 10 + n (Table 1)."""
        return 10 + n_bytes

    def total_cycles(self, n_bytes: int) -> int:
        return 8 * n_bytes + self.overhead_bits(n_bytes)

    def internal_clock_hz(self, bus_clock_hz: float) -> float:
        """The fast local clock every chip must run (Section 2.2)."""
        return self.internal_clock_ratio * bus_clock_hz

    def message_energy_pj(self, n_bytes: int) -> float:
        return self.total_cycles(n_bytes) * self.pj_per_bit

    def energy_per_goodput_bit_pj(self, n_bytes: int) -> float:
        if n_bytes <= 0:
            return float("inf")
        return self.message_energy_pj(n_bytes) / (8 * n_bytes)

    def wakeup_overhead_bits(self, know_power_state: bool) -> int:
        """Senders must either know every recipient's power state or
        send the wakeup sequence (start + stop, ~2 bit times) before
        every message (Section 2.5)."""
        return 0 if know_power_state else 2
