"""SPI models (Section 2.3): chip-selects, single master, daisy chains.

SPI is single-ended so it avoids the pull-up energy problem, and its
framing overhead is just asserting/de-asserting the chip-select
(2 bit-times in Figure 10).  Its costs are structural instead:

* one unique chip-select line per slave — I/O pads scale as 3 + n;
* a single master: slave-to-slave traffic relays through the master,
  more than doubling its cost (sent twice + controller energy);
* slaves cannot initiate: an interrupt needs an extra I/O line;
* daisy chaining removes chip-selects but turns the system into one
  long shift register with overhead proportional to every device's
  buffer length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class SPIBus:
    """A conventional single-master SPI bus with n slaves."""

    n_slaves: int
    pj_per_bit: float = 5.0            # single-ended totem-pole drive
    controller_pj_per_byte: float = 20.0

    def __post_init__(self) -> None:
        if self.n_slaves < 1:
            raise ValueError("SPI needs at least one slave")

    # -- structural costs (Table 1) -----------------------------------------
    @property
    def io_pads(self) -> int:
        """MOSI + MISO + SCLK + one chip-select per slave: 3 + n."""
        return 3 + self.n_slaves

    @property
    def supports_slave_initiation(self) -> bool:
        return False

    def interrupt_lines_needed(self, n_interrupting_slaves: int) -> int:
        """Each slave that must signal the master needs its own line."""
        return n_interrupting_slaves

    # -- framing (Figure 10) ----------------------------------------------------
    @staticmethod
    def overhead_bits(n_bytes: int) -> int:
        """Asserting and de-asserting the chip-select: 2."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        return 2

    def total_cycles(self, n_bytes: int) -> int:
        return 8 * n_bytes + self.overhead_bits(n_bytes)

    # -- energy ----------------------------------------------------------------
    def master_to_slave_energy_pj(self, n_bytes: int) -> float:
        return self.total_cycles(n_bytes) * self.pj_per_bit

    def slave_to_slave_energy_pj(self, n_bytes: int) -> float:
        """Relayed through the master: sent twice plus the energy of
        running the central controller (Section 2.3)."""
        relay = 2 * self.master_to_slave_energy_pj(n_bytes)
        controller = n_bytes * self.controller_pj_per_byte
        return relay + controller


@dataclass(frozen=True)
class DaisyChainedSPI:
    """Daisy-chained SPI: a system-wide shift register (Section 2.3).

    Eliminates chip-selects but every transfer shifts through the
    buffer of every device, adding overhead proportional to both the
    device count and each device's buffer length, and a protocol
    layer is still needed to establish message validity.
    """

    buffer_bits_per_device: Sequence[int]

    @property
    def n_devices(self) -> int:
        return len(self.buffer_bits_per_device)

    @property
    def io_pads(self) -> int:
        """MOSI/MISO pair per hop plus shared clock (no selects)."""
        return 3

    def shift_overhead_bits(self) -> int:
        """Bits shifted before any payload lands where it belongs."""
        return sum(self.buffer_bits_per_device)

    def transfer_cycles(self, n_bytes: int) -> int:
        return 8 * n_bytes + self.shift_overhead_bits()
