"""Baseline buses the paper compares against (Section 2, Table 1).

* :mod:`repro.baselines.i2c` — open-collector I2C: pull-up RC physics
  (the Section 2.1 analysis), Standard I2C, and the idealised
  "Oracle I2C" of Section 6.2.
* :mod:`repro.baselines.lee_i2c` — Lee et al.'s I2C-like bus keeper
  design [14]: 88 pJ/bit, 5x internal clock, process-tuned logic.
* :mod:`repro.baselines.spi` — SPI: chip-select scaling, single
  master, slave-to-slave relay cost, daisy chaining.
* :mod:`repro.baselines.uart` — UART framing overhead.
* :mod:`repro.baselines.features` — the Table 1 feature matrix.
"""

from repro.baselines.features import (
    BusFeatures,
    FEATURE_MATRIX,
    buses_satisfying_all_critical,
)
from repro.baselines.i2c import I2CElectrical, OracleI2C, StandardI2C
from repro.baselines.lee_i2c import LeeI2C
from repro.baselines.spi import DaisyChainedSPI, SPIBus
from repro.baselines.uart import UARTLink

__all__ = [
    "BusFeatures",
    "FEATURE_MATRIX",
    "buses_satisfying_all_critical",
    "I2CElectrical",
    "OracleI2C",
    "StandardI2C",
    "LeeI2C",
    "DaisyChainedSPI",
    "SPIBus",
    "UARTLink",
]
