"""The Table 1 feature comparison matrix.

Table 1 splits features into *critical* requirements (population-
independent pad count, ultra-low standby and active power,
synthesizability, an area-free global namespace, multi-master /
interrupt support) and *desirable* ones (broadcast, data-independent
behaviour, power awareness, hardware ACKs, low overhead).  Only MBus
satisfies every critical feature.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


class PowerLevel(enum.Enum):
    LOW = "Low"
    MEDIUM = "Med"
    HIGH = "High"


@dataclass(frozen=True)
class BusFeatures:
    """One column of Table 1."""

    name: str
    io_pads: Callable[[int], int]          # pads as a function of node count
    io_pads_note: str
    standby_power: PowerLevel
    active_power: PowerLevel
    synthesizable: bool
    global_unique_addresses: Optional[int]  # None = no address space
    multi_master: bool
    broadcast: bool                         # "Option" counts as False here
    broadcast_note: str
    data_independent: bool
    power_aware: bool
    hardware_acks: bool
    overhead_bits: Callable[[int], int]     # protocol bits for n bytes
    overhead_note: str

    # -- the paper's critical-feature predicate --------------------------------
    def population_independent_pads(self) -> bool:
        return self.io_pads(2) == self.io_pads(14)

    def satisfies_critical(self) -> bool:
        return (
            self.population_independent_pads()
            and self.standby_power is PowerLevel.LOW
            and self.active_power is PowerLevel.LOW
            and self.synthesizable
            and (self.global_unique_addresses or 0) >= 2 ** 20
            and self.multi_master
        )

    def satisfies_all(self) -> bool:
        return (
            self.satisfies_critical()
            and self.broadcast
            and self.data_independent
            and self.power_aware
            and self.hardware_acks
        )


FEATURE_MATRIX: Dict[str, BusFeatures] = {
    "I2C": BusFeatures(
        name="I2C",
        io_pads=lambda n: 2,
        io_pads_note="2 shared (4 when wirebonding pass-through)",
        standby_power=PowerLevel.LOW,
        active_power=PowerLevel.HIGH,
        synthesizable=True,
        global_unique_addresses=128,
        multi_master=True,
        broadcast=False,
        broadcast_note="general call exists but is not channelised",
        data_independent=True,
        power_aware=False,
        hardware_acks=True,
        overhead_bits=lambda n: 10 + n,
        overhead_note="10 + n",
    ),
    "SPI": BusFeatures(
        name="SPI",
        io_pads=lambda n: 3 + n,
        io_pads_note="3 + one chip-select per slave",
        standby_power=PowerLevel.LOW,
        active_power=PowerLevel.LOW,
        synthesizable=True,
        global_unique_addresses=None,
        multi_master=False,
        broadcast=True,
        broadcast_note="optional (assert several selects)",
        data_independent=True,
        power_aware=False,
        hardware_acks=False,
        overhead_bits=lambda n: 2,
        overhead_note="2 (chip-select assert/deassert)",
    ),
    "UART": BusFeatures(
        name="UART",
        io_pads=lambda n: 2 * n,
        io_pads_note="2 x n pairwise",
        standby_power=PowerLevel.LOW,
        active_power=PowerLevel.LOW,
        synthesizable=True,
        global_unique_addresses=None,
        multi_master=False,
        broadcast=False,
        broadcast_note="point-to-point only",
        data_independent=True,
        power_aware=False,
        hardware_acks=False,
        overhead_bits=lambda n: 2 * n,
        overhead_note="(2-3) x n depending on stop bits",
    ),
    "Lee-I2C": BusFeatures(
        name="Lee-I2C",
        io_pads=lambda n: 2,
        io_pads_note="2 shared (4 when wirebonding pass-through)",
        standby_power=PowerLevel.LOW,
        active_power=PowerLevel.MEDIUM,
        synthesizable=False,
        global_unique_addresses=128,
        multi_master=True,
        broadcast=False,
        broadcast_note="none",
        data_independent=True,
        power_aware=False,
        hardware_acks=True,
        overhead_bits=lambda n: 10 + n,
        overhead_note="10 + n",
    ),
    "MBus": BusFeatures(
        name="MBus",
        io_pads=lambda n: 4,
        io_pads_note="4 fixed (DATA/CLK in/out)",
        standby_power=PowerLevel.LOW,
        active_power=PowerLevel.LOW,
        synthesizable=True,
        global_unique_addresses=2 ** 24,
        multi_master=True,
        broadcast=True,
        broadcast_note="hardware broadcast with channels",
        data_independent=True,
        power_aware=True,
        hardware_acks=True,
        overhead_bits=lambda n: 19,
        overhead_note="19 short / 43 full, length-independent",
    ),
}


def buses_satisfying_all_critical() -> List[str]:
    """Names of buses meeting every critical requirement (only MBus)."""
    return [
        name
        for name, features in FEATURE_MATRIX.items()
        if features.satisfies_critical()
    ]
