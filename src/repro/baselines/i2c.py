"""I2C models: pull-up physics, Standard I2C, and Oracle I2C.

Section 2.1 analyses an idealised I2C bus at 1.2 V: 50 pF of bus
capacitance, fast-mode 400 kHz clock relaxed so the rise may take the
full half cycle (1.25 us) with 80 % VDD counting as logical 1.  That
permits a pull-up no larger than 15.5 kOhm, and generating the clock
alone costs per cycle:

* 23 pJ  — charge stored in wires/pads/gates, dumped when driven low;
* 116 pJ — dissipated in the pull-up while the line is held low;
* 35 pJ  — dissipated in the pull-up while it charges the line;

for 174 pJ/cycle = 69.6 uW at 400 kHz.  The 151 pJ/bit lost *in the
resistor* (116 + 35) is the energy MBus eliminates.

"Oracle I2C" (Section 6.2) grants I2C perfect knowledge: the exact bus
capacitance is known, an ideally large resistor is selected for each
clock frequency, rise time takes the entire half period, and 80 % VDD
is logical 1.  Because the oracle resistor scales with 1/f, the
per-cycle energy becomes frequency independent — the model below
reproduces that closed form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

#: ln 5: an RC node reaches 80 % of its asymptote after RC*ln(5).
LN5 = math.log(5.0)


@dataclass(frozen=True)
class I2CElectrical:
    """Electrical configuration of one open-collector bus line.

    Defaults reproduce the Section 2.1 worked example exactly.
    """

    vdd: float = 1.2
    bus_capacitance_pf: float = 50.0
    clock_hz: float = 400_000.0
    logic_high_fraction: float = 0.8   # 80 % VDD counts as a 1

    @property
    def half_period_s(self) -> float:
        return 0.5 / self.clock_hz

    @property
    def max_pullup_ohms(self) -> float:
        """Largest pull-up that reaches logic-high in a half period.

        Rise to fraction p of VDD needs t = R*C*ln(1/(1-p)); with
        p = 0.8 that is R*C*ln5, so R <= (T/2) / (C * ln5) — 15.5 kOhm
        for the paper's parameters.
        """
        c = self.bus_capacitance_pf * 1e-12
        return self.half_period_s / (c * LN5)

    # -- per-cycle clock-line energies (the Section 2.1 decomposition) --
    @property
    def v_high(self) -> float:
        return self.logic_high_fraction * self.vdd

    @property
    def cap_dump_pj(self) -> float:
        """Charge in wires/pads/gates dumped when the line is driven
        low: (1/2) C Vhigh^2 — the paper's 23 pJ."""
        c = self.bus_capacitance_pf * 1e-12
        return 0.5 * c * self.v_high ** 2 * 1e12

    @property
    def resistor_low_pj(self) -> float:
        """Dissipated in the pull-up while the line is held low for a
        half period: VDD^2 / R * T/2 — the paper's 116 pJ."""
        return (
            self.vdd ** 2 / self.max_pullup_ohms * self.half_period_s * 1e12
        )

    @property
    def resistor_rise_pj(self) -> float:
        """Dissipated in the pull-up while charging the line to 80 %:
        C*Vh*VDD - (1/2) C Vh^2 — the paper's 35 pJ."""
        c = self.bus_capacitance_pf * 1e-12
        supplied = c * self.v_high * self.vdd
        stored = 0.5 * c * self.v_high ** 2
        return (supplied - stored) * 1e12

    @property
    def clock_cycle_energy_pj(self) -> float:
        """Total per clock cycle — the paper's 174 pJ."""
        return self.cap_dump_pj + self.resistor_low_pj + self.resistor_rise_pj

    @property
    def clock_power_uw(self) -> float:
        """Clock-generation power — the paper's 69.6 uW."""
        return self.clock_cycle_energy_pj * 1e-12 * self.clock_hz * 1e6

    @property
    def pullup_loss_per_bit_pj(self) -> float:
        """Energy lost in the resistor per bit (116 + 35 = 151 pJ) —
        the component MBus eliminates (Section 2.1)."""
        return self.resistor_low_pj + self.resistor_rise_pj


class _I2CProtocol:
    """Shared I2C framing arithmetic (Figure 10 / Table 1)."""

    @staticmethod
    def overhead_bits(n_bytes: int) -> int:
        """Protocol bits beyond payload: 10 + n (start, address+R/W,
        per-byte ACK, stop), as plotted in Figure 10."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        return 10 + n_bytes

    @staticmethod
    def total_cycles(n_bytes: int) -> int:
        return 8 * n_bytes + _I2CProtocol.overhead_bits(n_bytes)


class StandardI2C(_I2CProtocol):
    """Standard open-collector I2C with a fixed 50 pF bus.

    The pull-up is (re)sized for whatever clock is requested, so the
    per-cycle energy is the Section 2.1 constant and total power is
    linear in frequency.
    """

    def __init__(self, electrical: Optional[I2CElectrical] = None):
        self.electrical = electrical or I2CElectrical()

    def cycle_energy_pj(self, data_zero_fraction: float = 0.5) -> float:
        """Clock line plus data line, per bus clock cycle.

        A transmitted 0 holds SDA low for a full period (two
        half-period hold-low dissipations); transitions between bits
        cost a dump + a rise pair with probability z(1-z) each way.
        """
        e = self.electrical
        clock = e.clock_cycle_energy_pj
        z = data_zero_fraction
        hold_low = 2.0 * e.resistor_low_pj * z
        transitions = 2.0 * z * (1 - z) * (e.cap_dump_pj + e.resistor_rise_pj)
        return clock + hold_low + transitions

    def power_uw(self, clock_hz: float, data_zero_fraction: float = 0.5) -> float:
        return self.cycle_energy_pj(data_zero_fraction) * 1e-12 * clock_hz * 1e6

    def message_energy_pj(self, n_bytes: int) -> float:
        return self.total_cycles(n_bytes) * self.cycle_energy_pj()

    def energy_per_goodput_bit_pj(self, n_bytes: int) -> float:
        if n_bytes <= 0:
            return float("inf")
        return self.message_energy_pj(n_bytes) / (8 * n_bytes)


class OracleI2C(_I2CProtocol):
    """Idealised I2C knowing the exact bus capacitance (Section 6.2).

    Bus capacitance follows the paper's MBus simulation parameters —
    2 pF per pad and 0.25 pF of wire per chip — so a population of n
    chips loads each line with n * 2.25 pF.  The oracle resistor is
    resized for every frequency so that the rise occupies the full
    half period; per-cycle energy is then frequency independent:

        E_clock/cycle = C V^2 (ln5 + p(1 - p/2) + p^2/2)

    with p = 0.8 the logic-high fraction.  Each chip's synthesised bus
    controller also clocks at the bus rate; ``chip_logic_pj`` charges
    that per-chip switching (the same 3.5 pJ the MBus simulation pays)
    so the comparison is apples-to-apples.
    """

    def __init__(
        self,
        n_nodes: int,
        vdd: float = 1.2,
        pad_pf: float = 2.0,
        wire_pf: float = 0.25,
        logic_high_fraction: float = 0.8,
        chip_logic_pj: float = 3.5,
    ):
        if n_nodes < 2:
            raise ValueError("a bus has at least two nodes")
        self.n_nodes = n_nodes
        self.vdd = vdd
        self.pad_pf = pad_pf
        self.wire_pf = wire_pf
        self.logic_high_fraction = logic_high_fraction
        self.chip_logic_pj = chip_logic_pj

    @staticmethod
    def simulation_grade(n_nodes: int) -> "OracleI2C":
        """Chip logic costed at the MBus *simulation* figure
        (3.5 pJ/chip/cycle): compare against SimulatedEnergyModel."""
        return OracleI2C(n_nodes, chip_logic_pj=3.5)

    @staticmethod
    def measured_grade(n_nodes: int) -> "OracleI2C":
        """Chip logic costed at the MBus *measured* per-chip figure
        (22.6 pJ/chip/cycle, which folds in the ~6.5x un-isolatable
        system overhead of Section 6.2): compare against
        MeasuredEnergyModel for an apples-to-apples Figure 11."""
        return OracleI2C(n_nodes, chip_logic_pj=22.6)

    @property
    def line_capacitance_pf(self) -> float:
        return self.n_nodes * (self.pad_pf + self.wire_pf)

    def electrical_at(self, clock_hz: float) -> I2CElectrical:
        """The equivalent Section 2.1 configuration at one frequency."""
        return I2CElectrical(
            vdd=self.vdd,
            bus_capacitance_pf=self.line_capacitance_pf,
            clock_hz=clock_hz,
            logic_high_fraction=self.logic_high_fraction,
        )

    def cycle_energy_pj(self, data_zero_fraction: float = 0.5) -> float:
        """Per-cycle energy — frequency independent by construction."""
        # Any frequency yields the same value; use 400 kHz.
        e = self.electrical_at(400_000.0)
        clock = e.clock_cycle_energy_pj
        z = data_zero_fraction
        hold_low = 2.0 * e.resistor_low_pj * z
        transitions = 2.0 * z * (1 - z) * (e.cap_dump_pj + e.resistor_rise_pj)
        logic = self.n_nodes * self.chip_logic_pj
        return clock + hold_low + transitions + logic

    def power_uw(self, clock_hz: float, data_zero_fraction: float = 0.5) -> float:
        return self.cycle_energy_pj(data_zero_fraction) * 1e-12 * clock_hz * 1e6

    def message_energy_pj(self, n_bytes: int) -> float:
        return self.total_cycles(n_bytes) * self.cycle_energy_pj()

    def energy_per_goodput_bit_pj(self, n_bytes: int) -> float:
        if n_bytes <= 0:
            return float("inf")
        return self.message_energy_pj(n_bytes) / (8 * n_bytes)
