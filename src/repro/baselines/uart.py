"""UART framing model (Figure 10 / Table 1).

UART frames each byte with a start bit and one or two stop bits, so
its overhead is proportional to message length: 2n bits with one stop
bit, 3n with two (assuming 8-bit frames and no parity, as the paper
does).  Point-to-point UART also scales badly in pads: every node
pair needs its own TX/RX pair (2 x n in Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class UARTLink:
    """One UART configuration."""

    stop_bits: int = 1
    parity: bool = False
    data_bits: int = 8

    def __post_init__(self) -> None:
        if self.stop_bits not in (1, 2):
            raise ValueError("stop_bits must be 1 or 2")
        if self.data_bits != 8:
            raise ValueError("the paper's comparison assumes 8-bit frames")

    @property
    def frame_overhead_bits(self) -> int:
        """Start + stop (+ parity) bits per byte."""
        return 1 + self.stop_bits + (1 if self.parity else 0)

    def overhead_bits(self, n_bytes: int) -> int:
        """Total non-payload bits for an n-byte message (Figure 10)."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        return self.frame_overhead_bits * n_bytes

    def total_bits(self, n_bytes: int) -> int:
        return (self.data_bits + self.frame_overhead_bits) * n_bytes

    def efficiency(self, n_bytes: int) -> float:
        """Payload fraction of transmitted bits."""
        if n_bytes == 0:
            return 0.0
        return 8 * n_bytes / self.total_bits(n_bytes)

    @staticmethod
    def io_pads(n_nodes: int) -> int:
        """Pairwise TX/RX lines: 2 x n (Table 1)."""
        return 2 * n_nodes
