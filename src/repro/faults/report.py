"""Reliability analytics: what the bus did under adversity.

:func:`build_reliability_report` compares a run's observed
transaction stream against the *intent* encoded in the workload (the
compiled post schedule resolved to expected deliveries through the
same :meth:`Address.matches` predicate both engines use) and against
the injected fault schedule, producing a
:class:`ReliabilityReport`:

* delivery accounting — expected / intact / corrupted / lost — and
  the headline ``recovery_rate``;
* protocol-level recovery signals — interjection sequences, general
  errors, failed transactions, retransmissions and their latency
  (first failed attempt to eventual success of the same message);
* a per-fault outcome classification tying each primitive to the
  transaction it disturbed.

The report is deterministic: it contains no wall-clock quantities,
so two runs with the same seed compare equal (the acceptance bar for
the fault subsystem).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.schema import REPORT_SCHEMA_VERSION
from repro.faults.primitives import PS_PER_S, FaultSpec

#: Outcome classifications, roughly ordered by severity.
OUTCOMES = (
    "no_injections",    # compiled to nothing (e.g. a rate-0 generator)
    "ambient",          # static fault (e.g. clock drift) spanning the run
    "idle",             # injected outside any transaction, no txn followed
    "spurious_wakeup",  # provoked a null transaction / general error
    "tolerated",        # overlapping transaction completed intact
    "corrupted",        # transaction "succeeded" but a delivery was wrong
    "killed",           # overlapping transaction failed
)


@dataclass(frozen=True)
class FaultOutcome:
    """What one fault primitive did to the run."""

    fault_index: int
    kind: str
    at_s: float
    transaction_index: Optional[int]
    classification: str

    # lint: disable=schema -- one-way analytic report; records are re-derived from runs, never loaded back
    def to_dict(self) -> Dict:
        return {
            "fault_index": self.fault_index,
            "kind": self.kind,
            "at_s": self.at_s,
            "transaction_index": self.transaction_index,
            "classification": self.classification,
        }


@dataclass
class ReliabilityReport:
    """Recovery statistics for one (possibly faulted) run."""

    n_faults: int
    scheduled_injections: int
    performed_injections: int
    injection_counts: Dict[str, int]
    edges_injected: int
    edges_dropped: int
    expected_deliveries: int
    intact_deliveries: int
    corrupted_deliveries: int
    lost_deliveries: int
    n_transactions: int
    failed_transactions: int
    general_errors: int
    interjections: int
    retransmissions: int
    retransmission_latencies_s: List[float]
    #: False when faults left member engines desynchronised at the end
    #: of the run (they resync on the next transaction's interjection;
    #: Section 4.9's detector makes that re-anchoring reliable).
    bus_idle: bool = True
    outcomes: List[FaultOutcome] = field(default_factory=list)

    @property
    def recovery_rate(self) -> float:
        """Fraction of intended deliveries that arrived intact."""
        if self.expected_deliveries == 0:
            return 1.0
        return self.intact_deliveries / self.expected_deliveries

    @property
    def mean_retransmission_latency_s(self) -> float:
        if not self.retransmission_latencies_s:
            return 0.0
        return (
            sum(self.retransmission_latencies_s)
            / len(self.retransmission_latencies_s)
        )

    def outcome_counts(self) -> Dict[str, int]:
        counts = Counter(o.classification for o in self.outcomes)
        return {k: counts[k] for k in OUTCOMES if counts[k]}

    # lint: disable=schema -- one-way analytic report; records are re-derived from runs, never loaded back
    def to_dict(self) -> Dict:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "n_faults": self.n_faults,
            "scheduled_injections": self.scheduled_injections,
            "performed_injections": self.performed_injections,
            "injection_counts": dict(self.injection_counts),
            "edges_injected": self.edges_injected,
            "edges_dropped": self.edges_dropped,
            "expected_deliveries": self.expected_deliveries,
            "intact_deliveries": self.intact_deliveries,
            "corrupted_deliveries": self.corrupted_deliveries,
            "lost_deliveries": self.lost_deliveries,
            "recovery_rate": self.recovery_rate,
            "n_transactions": self.n_transactions,
            "failed_transactions": self.failed_transactions,
            "general_errors": self.general_errors,
            "interjections": self.interjections,
            "retransmissions": self.retransmissions,
            "retransmission_latencies_s": list(self.retransmission_latencies_s),
            "mean_retransmission_latency_s": self.mean_retransmission_latency_s,
            "bus_idle": self.bus_idle,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def summary(self) -> str:
        lines = [
            f"reliability: {self.n_faults} fault(s), "
            f"{self.performed_injections} injection(s)",
            f"  deliveries: {self.intact_deliveries}/{self.expected_deliveries} "
            f"intact ({self.recovery_rate:.1%} recovery), "
            f"{self.corrupted_deliveries} corrupted, "
            f"{self.lost_deliveries} lost",
            f"  transactions: {self.failed_transactions}/{self.n_transactions} "
            f"failed, {self.general_errors} general errors, "
            f"{self.interjections} interjection sequences",
        ]
        if self.retransmissions:
            lines.append(
                f"  retransmissions: {self.retransmissions}, mean latency "
                f"{self.mean_retransmission_latency_s * 1e3:.2f} ms"
            )
        if not self.bus_idle:
            lines.append(
                "  bus left desynchronised (resyncs on next transaction)"
            )
        counts = self.outcome_counts()
        if counts:
            lines.append(
                "  fault outcomes: "
                + ", ".join(f"{k}={v}" for k, v in counts.items())
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Expected-delivery resolution.
# ----------------------------------------------------------------------
def expected_deliveries(spec, workload) -> Counter:
    """The (receiver, payload) multiset a fault-free run delivers.

    Resolved through the same :meth:`Address.matches` predicate the
    engines use, over the workload's compiled post schedule.  Assumes
    a workload that delivers cleanly on an undisturbed bus (no
    receiver-buffer overruns, no watchdog kills); reliability studies
    should start from such a baseline so every shortfall is
    attributable to the injected faults.
    """
    from repro.scenario.workload import PostEvent, Workload

    if isinstance(workload, Workload):
        events = workload.compile(spec)
    else:
        events = tuple(workload)
    expected: Counter = Counter()
    for event in events:
        if not isinstance(event, PostEvent):
            continue
        for node in spec.nodes:
            if node.name == event.source:
                continue
            if event.dest.matches(
                node.short_prefix,
                node.full_prefix,
                frozenset(node.broadcast_channels),
            ):
                expected[(node.name, bytes(event.payload))] += 1
    return expected


# ----------------------------------------------------------------------
# Report construction.
# ----------------------------------------------------------------------
def _classify(
    fault_kind, at_ps, transactions, corrupt_txns
) -> Tuple[Optional[int], str]:
    if fault_kind == "clock_drift":
        return None, "ambient"
    overlapping = None
    following = None
    for t in transactions:
        if t.start_ps <= at_ps <= t.end_ps:
            overlapping = t
            break
        if t.start_ps > at_ps and following is None:
            following = t
    txn = overlapping or following
    if txn is None:
        return None, "idle"
    if txn.general_error and txn.message is None:
        return txn.index, "spurious_wakeup"
    if not txn.ok:
        return txn.index, "killed"
    if txn.index in corrupt_txns:
        return txn.index, "corrupted"
    return txn.index, "tolerated"


def _retransmission_stats(transactions) -> Tuple[int, List[float]]:
    """Failed-then-succeeded message accounting.

    A retransmission is a successful transaction whose
    ``(tx_node, payload)`` was previously attempted and failed;
    latency runs from the first failed attempt's start to the
    eventual success's end.
    """
    open_failures: Dict[Tuple, Tuple[int, int]] = {}   # key -> (start_ps, n)
    retransmissions = 0
    latencies: List[float] = []
    for t in transactions:
        if t.tx_node is None or t.message is None:
            continue
        key = (t.tx_node, bytes(t.message.payload))
        if t.ok:
            if key in open_failures:
                start_ps, n_failures = open_failures.pop(key)
                retransmissions += n_failures
                latencies.append((t.end_ps - start_ps) / PS_PER_S)
        else:
            start_ps, n_failures = open_failures.get(key, (t.start_ps, 0))
            open_failures[key] = (start_ps, n_failures + 1)
    return retransmissions, latencies


def build_reliability_report(
    spec,
    workload,
    fault_spec: FaultSpec,
    transactions,
    injector=None,
    system=None,
) -> ReliabilityReport:
    """Assemble the :class:`ReliabilityReport` for one finished run."""
    expected = expected_deliveries(spec, workload)
    n_expected = sum(expected.values())
    # One ordered pass over the deliveries both tallies the multiset
    # intersection with the expectations and flags the transactions
    # carrying unexpected deliveries (wrong payloads *and* duplicates
    # beyond the expected count), so the aggregate counters and the
    # per-fault classification can never disagree.
    remaining = Counter(expected)
    corrupt_txns = set()
    intact = 0
    n_actual = 0
    for t in transactions:
        for name, received in t.rx_deliveries:
            n_actual += 1
            key = (name, bytes(received.payload))
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                intact += 1
            else:
                corrupt_txns.add(t.index)

    schedule = injector.schedule if injector is not None else ()
    performed = injector.performed if injector is not None else []
    retransmissions, latencies = _retransmission_stats(transactions)

    if system is not None and getattr(system, "mode", None) == "edge":
        interjections = system.mediator.mediator.stats.interjection_sequences
    else:
        # The fast path has no mediator FSM; every transaction ends in
        # exactly one interjection sequence, so the count is implied.
        interjections = len(transactions)

    outcomes: List[FaultOutcome] = []
    first_action: Dict[int, int] = {}
    for action in schedule:
        if action.fault_index not in first_action:
            first_action[action.fault_index] = action.at_ps
    for index, fault in enumerate(fault_spec.faults):
        if index not in first_action:
            # Compiled to nothing (e.g. a rate-0 glitch generator):
            # there is no injection time to attribute to a transaction.
            outcomes.append(
                FaultOutcome(
                    fault_index=index,
                    kind=fault.kind,
                    at_s=0.0,
                    transaction_index=None,
                    classification="no_injections",
                )
            )
            continue
        at_ps = first_action[index]
        txn_index, classification = _classify(
            fault.kind, at_ps, transactions, corrupt_txns
        )
        outcomes.append(
            FaultOutcome(
                fault_index=index,
                kind=fault.kind,
                at_s=at_ps / PS_PER_S,
                transaction_index=txn_index,
                classification=classification,
            )
        )

    return ReliabilityReport(
        n_faults=len(fault_spec.faults),
        scheduled_injections=len(schedule),
        performed_injections=len(performed),
        injection_counts=dict(injector.counts) if injector else {},
        edges_injected=injector.edges_injected if injector else 0,
        edges_dropped=injector.edges_dropped if injector else 0,
        expected_deliveries=n_expected,
        intact_deliveries=intact,
        corrupted_deliveries=n_actual - intact,
        lost_deliveries=n_expected - intact,
        n_transactions=len(transactions),
        failed_transactions=sum(1 for t in transactions if not t.ok),
        general_errors=sum(1 for t in transactions if t.general_error),
        interjections=interjections,
        retransmissions=retransmissions,
        retransmission_latencies_s=latencies,
        bus_idle=True if system is None else system.is_idle,
        outcomes=outcomes,
    )
