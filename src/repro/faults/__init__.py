"""Fault injection & reliability analytics.

The paper's robustness claims — interjection as a universal
error/recovery signal (4.9), tolerance of member power loss
mid-transaction (Section 3), glitch-resilient edge semantics
(Figure 5) — become testable here:

* :mod:`repro.faults.primitives` — frozen, JSON-round-trippable
  fault dataclasses (:class:`WireGlitch`, :class:`StuckAt`,
  :class:`DropEdge`, :class:`BitFlip`, :class:`ClockDrift`,
  :class:`NodePowerLoss`, seeded :class:`RandomGlitches`) grouped in
  a :class:`FaultSpec` that compiles to a deterministic injection
  schedule.
* :mod:`repro.faults.injector` — binds a schedule to a built
  edge-backend system; targeted nets are class-swapped to an
  intercepting subclass, so fault-free runs keep the PR1 hot path
  untouched.
* :mod:`repro.faults.report` — :class:`ReliabilityReport`: recovery
  rate, corrupted/lost deliveries, interjection and retransmission
  accounting, per-fault outcome classification.

Drive it through :func:`repro.scenario.run`::

    from repro.faults import FaultSpec, RandomGlitches
    from repro.scenario import run

    report = run(spec, workload,
                 faults=FaultSpec((RandomGlitches(seed=1, rate_hz=500),)))
    print(report.reliability.summary())
"""

from __future__ import annotations

import json
from typing import Dict, Union

from repro.core.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.primitives import (
    BitFlip,
    ClockDrift,
    DropEdge,
    Fault,
    FaultSpec,
    Injection,
    NodePowerLoss,
    RandomGlitches,
    StuckAt,
    WireGlitch,
    fault_from_dict,
    normalize_faults,
)
from repro.faults.report import (
    FaultOutcome,
    ReliabilityReport,
    build_reliability_report,
    expected_deliveries,
)


def load_faults(source: Union[str, Dict]) -> FaultSpec:
    """Load a :class:`FaultSpec` from a JSON file or parsed dict.

    Accepts either a bare ``FaultSpec.to_dict()`` document or a
    scenario-style wrapper with a ``"faults"`` key holding one.
    """
    if isinstance(source, str):
        with open(source) as handle:
            document = json.load(handle)
    else:
        document = source
    if not isinstance(document, dict):
        raise ConfigurationError("a faults document must be a JSON object")
    if "faults" in document and isinstance(document["faults"], dict):
        document = document["faults"]
    return FaultSpec.from_dict(document)


__all__ = [
    "BitFlip",
    "ClockDrift",
    "DropEdge",
    "Fault",
    "FaultInjector",
    "FaultOutcome",
    "FaultSpec",
    "Injection",
    "NodePowerLoss",
    "RandomGlitches",
    "ReliabilityReport",
    "StuckAt",
    "WireGlitch",
    "build_reliability_report",
    "expected_deliveries",
    "fault_from_dict",
    "load_faults",
    "normalize_faults",
]
