"""Declarative fault primitives that compile to injection schedules.

A fault is a frozen dataclass describing one physical adversity — a
burst of spurious edges, a stuck wire, a dropped pulse, an inverted
window, oscillator skew, or a mid-transaction power loss.  Like
:class:`~repro.scenario.spec.SystemSpec` and
:class:`~repro.scenario.workload.Workload`, faults:

* **round-trip through JSON** — ``to_dict()`` /
  :func:`fault_from_dict` reconstruct an equal object, so a whole
  reliability study (topology + traffic + adversity) lives in
  version-controlled documents;
* **compile deterministically** — :meth:`FaultSpec.compile` yields a
  time-sorted tuple of low-level :class:`Injection` actions that is a
  pure function of ``(fault spec, system spec)``; seeded primitives
  (:class:`RandomGlitches`) use their own :class:`random.Random`, so
  the same seed always produces the same schedule;
* **are backend-checked, not backend-aware** — the compiled schedule
  carries no simulator references; binding to live nets happens in
  :class:`~repro.faults.injector.FaultInjector`, which requires the
  edge-accurate engine (the fast path has no wires to disturb).

Wire targeting: ``node``/``wire`` name the ring segment *driven by*
that node — its DATA-out or CLK-out pad net — which is simultaneously
the next node's input.  Faults propagate downstream exactly as real
noise would: through every forwarding wire controller until a driving
node or the mediator's arbitration break absorbs them.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.core.errors import ConfigurationError

#: Integer picoseconds per second (matches the scheduler's time base).
PS_PER_S = 1_000_000_000_000

WIRES = ("data", "clk")


def _ps(seconds: float, what: str) -> int:
    if seconds < 0:
        raise ConfigurationError(f"{what} must be non-negative, got {seconds}")
    return int(round(seconds * PS_PER_S))


def _check_wire(wire: str) -> None:
    if wire not in WIRES:
        raise ConfigurationError(f"wire must be one of {WIRES}, not {wire!r}")


def _check_node(spec, name: str, kind: str) -> None:
    if name not in spec.node_names:
        raise ConfigurationError(
            f"{kind} targets unknown node {name!r}; spec has "
            f"{list(spec.node_names)}"
        )


# ----------------------------------------------------------------------
# The compilation target.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Injection:
    """One low-level injector action at an absolute simulation time.

    ``kind`` is the injector dispatch key (``glitch_edge``,
    ``force_start``/``force_end``, ``drop_start``/``drop_end``,
    ``flip_start``/``flip_end``, ``power_off``/``power_on``,
    ``clock_drift``); ``fault_index`` points back at the primitive in
    ``FaultSpec.faults`` that produced it, for outcome classification.
    """

    at_ps: int
    kind: str
    node: str
    wire: str = ""
    value: float = 0
    fault_index: int = -1


class Fault:
    """Base class for fault primitives (mirrors ``Workload``)."""

    kind: str = ""

    def _injections(self, spec) -> Iterable[Injection]:
        raise NotImplementedError

    def _params(self) -> Dict:
        raise NotImplementedError

    def to_dict(self) -> Dict:
        return {"kind": self.kind, **self._params()}


@dataclass(frozen=True)
class WireGlitch(Fault):
    """``edges`` spurious transitions on a ring segment (EMI burst).

    Each edge toggles the wire away from its instantaneous value;
    an even ``edges`` count restores the original level (a transient
    glitch — resolved before the next latch edge if ``width_s`` is
    short, exactly the case the paper's edge semantics tolerate), an
    odd count parks the wire inverted until the driver next changes
    it (persistent corruption).  ``edges >= interjection_threshold``
    toggles landing between two CLK edges saturate every downstream
    interjection detector (Section 4.9) and force the bus into
    control mode.
    """

    node: str
    at_s: float
    wire: str = "data"
    edges: int = 6
    width_s: float = 50e-9
    kind = "wire_glitch"

    def _injections(self, spec):
        _check_node(spec, self.node, "WireGlitch")
        _check_wire(self.wire)
        if self.edges < 1:
            raise ConfigurationError("WireGlitch needs at least one edge")
        t0 = _ps(self.at_s, "at_s")
        width = _ps(self.width_s, "width_s")
        for i in range(self.edges):
            yield Injection(
                at_ps=t0 + i * width,
                kind="glitch_edge",
                node=self.node,
                wire=self.wire,
            )

    def _params(self) -> Dict:
        return {
            "node": self.node,
            "at_s": self.at_s,
            "wire": self.wire,
            "edges": self.edges,
            "width_s": self.width_s,
        }


@dataclass(frozen=True)
class StuckAt(Fault):
    """Force a ring segment to ``value`` for a window (solder bridge,
    shorted pad).  Driver transitions during the window are shadowed
    and the wire snaps to the driver's intended level when released."""

    node: str
    at_s: float
    duration_s: float
    value: int = 0
    wire: str = "data"
    kind = "stuck_at"

    def _injections(self, spec):
        _check_node(spec, self.node, "StuckAt")
        _check_wire(self.wire)
        if self.value not in (0, 1):
            raise ConfigurationError("StuckAt value must be 0 or 1")
        if self.duration_s <= 0:
            raise ConfigurationError("StuckAt needs a positive duration_s")
        t0 = _ps(self.at_s, "at_s")
        yield Injection(
            at_ps=t0, kind="force_start", node=self.node, wire=self.wire,
            value=self.value,
        )
        yield Injection(
            at_ps=t0 + _ps(self.duration_s, "duration_s"),
            kind="force_end", node=self.node, wire=self.wire,
        )

    def _params(self) -> Dict:
        return {
            "node": self.node,
            "at_s": self.at_s,
            "duration_s": self.duration_s,
            "value": self.value,
            "wire": self.wire,
        }


@dataclass(frozen=True)
class DropEdge(Fault):
    """Swallow the next ``count`` transitions on a segment (marginal
    driver, cracked bond wire).  The wire holds its stale level while
    edges are dropped; with ``duration_s`` set, any undropped budget
    expires at the window end and the wire resyncs to the driver."""

    node: str
    at_s: float
    count: int = 1
    duration_s: Optional[float] = None
    wire: str = "clk"
    kind = "drop_edge"

    def _injections(self, spec):
        _check_node(spec, self.node, "DropEdge")
        _check_wire(self.wire)
        if self.count < 1:
            raise ConfigurationError("DropEdge needs count >= 1")
        t0 = _ps(self.at_s, "at_s")
        yield Injection(
            at_ps=t0, kind="drop_start", node=self.node, wire=self.wire,
            value=self.count,
        )
        if self.duration_s is not None:
            if self.duration_s <= 0:
                raise ConfigurationError("DropEdge duration_s must be positive")
            yield Injection(
                at_ps=t0 + _ps(self.duration_s, "duration_s"),
                kind="drop_end", node=self.node, wire=self.wire,
            )

    def _params(self) -> Dict:
        return {
            "node": self.node,
            "at_s": self.at_s,
            "count": self.count,
            "duration_s": self.duration_s,
            "wire": self.wire,
        }


@dataclass(frozen=True)
class BitFlip(Fault):
    """Invert a segment for a window: every level carried during
    ``[at_s, at_s + duration_s)`` reads as its complement, so any
    latch edge inside the window samples a flipped bit."""

    node: str
    at_s: float
    duration_s: float
    wire: str = "data"
    kind = "bit_flip"

    def _injections(self, spec):
        _check_node(spec, self.node, "BitFlip")
        _check_wire(self.wire)
        if self.duration_s <= 0:
            raise ConfigurationError("BitFlip needs a positive duration_s")
        t0 = _ps(self.at_s, "at_s")
        yield Injection(
            at_ps=t0, kind="flip_start", node=self.node, wire=self.wire,
        )
        yield Injection(
            at_ps=t0 + _ps(self.duration_s, "duration_s"),
            kind="flip_end", node=self.node, wire=self.wire,
        )

    def _params(self) -> Dict:
        return {
            "node": self.node,
            "at_s": self.at_s,
            "duration_s": self.duration_s,
            "wire": self.wire,
        }


@dataclass(frozen=True)
class ClockDrift(Fault):
    """Static timing skew of ``ppm`` parts per million.

    Applied at bind time with one sign convention: ``+ppm`` is a
    uniformly *fast* part, so every timescale the node owns shrinks
    by ``1 + ppm / 1e6`` — its pad/mux propagation delays divide by
    the factor and, on the mediator node, the generated bus clock
    period divides too (the clock runs fast).  MBus's
    source-synchronous edges make moderate drift invisible — the
    reliability experiment this enables is showing exactly how much
    skew the protocol absorbs.
    """

    node: str
    ppm: float
    kind = "clock_drift"

    def _injections(self, spec):
        _check_node(spec, self.node, "ClockDrift")
        if abs(self.ppm) >= 1e6:
            raise ConfigurationError("ClockDrift ppm must be within ±1e6")
        yield Injection(
            at_ps=0, kind="clock_drift", node=self.node, value=self.ppm,
        )

    def _params(self) -> Dict:
        return {"node": self.node, "ppm": self.ppm}


@dataclass(frozen=True)
class NodePowerLoss(Fault):
    """A member node browns out at ``at_s``: both gated domains drop,
    all transaction state is lost and the always-on wire controllers
    revert to forwarding (Section 3's robustness scenario).

    The node re-wakes through the normal four-edge sequence on
    subsequent bus activity; with ``duration_s`` set, external supply
    returns and both domains are re-powered directly at the window
    end.  The mediator cannot be the target — it must self-start, so
    its frontend is modelled as never power-gated (Section 4.2).
    """

    node: str
    at_s: float
    duration_s: Optional[float] = None
    kind = "power_loss"

    def _injections(self, spec):
        _check_node(spec, self.node, "NodePowerLoss")
        if spec.node(self.node).is_mediator:
            raise ConfigurationError(
                "NodePowerLoss cannot target the mediator: the paper's "
                "robustness story covers member-node power loss "
                "(the mediator frontend must always self-start)"
            )
        t0 = _ps(self.at_s, "at_s")
        yield Injection(at_ps=t0, kind="power_off", node=self.node)
        if self.duration_s is not None:
            if self.duration_s <= 0:
                raise ConfigurationError(
                    "NodePowerLoss duration_s must be positive"
                )
            yield Injection(
                at_ps=t0 + _ps(self.duration_s, "duration_s"),
                kind="power_on", node=self.node,
            )

    def _params(self) -> Dict:
        return {
            "node": self.node,
            "at_s": self.at_s,
            "duration_s": self.duration_s,
        }


@dataclass(frozen=True)
class RandomGlitches(Fault):
    """Seeded pseudo-random EMI: glitch bursts at ``rate_hz`` over a
    window, spread across the targeted segments.

    Inter-arrival times are exponential with mean ``1 / rate_hz``
    (memoryless noise); each arrival picks a target node uniformly
    and emits a :class:`WireGlitch`-shaped burst of ``edges``
    transitions.  The schedule is a pure function of ``(seed, spec)``
    — identical on every run, which is what makes
    recovery-rate-vs-glitch-rate sweeps reproducible.

    The default single-edge burst never saturates an interjection
    detector (one spurious toggle plus one data toggle stays under
    the threshold of 3); raise ``edges`` past the spec's
    ``interjection_threshold`` to model storms that do.
    """

    seed: int = 0
    rate_hz: float = 100.0
    duration_s: float = 0.01
    start_s: float = 0.0
    wire: str = "data"
    nodes: Optional[Tuple[str, ...]] = None
    edges: int = 1
    width_s: float = 50e-9
    kind = "random_glitches"

    def __post_init__(self) -> None:
        if self.nodes is not None and not isinstance(self.nodes, tuple):
            object.__setattr__(self, "nodes", tuple(self.nodes))

    def _injections(self, spec):
        _check_wire(self.wire)
        if self.rate_hz < 0:
            raise ConfigurationError("rate_hz must be non-negative")
        if self.duration_s <= 0:
            raise ConfigurationError("RandomGlitches needs duration_s > 0")
        if self.edges < 1:
            raise ConfigurationError("RandomGlitches needs edges >= 1")
        targets = self.nodes or spec.node_names
        for name in targets:
            _check_node(spec, name, "RandomGlitches")
        if self.rate_hz == 0:
            return
        rng = random.Random(self.seed)
        t = self.start_s
        end = self.start_s + self.duration_s
        width = _ps(self.width_s, "width_s")
        while True:
            t += rng.expovariate(self.rate_hz)
            if t >= end:
                break
            node = targets[rng.randrange(len(targets))]
            t0 = _ps(t, "glitch time")
            for i in range(self.edges):
                yield Injection(
                    at_ps=t0 + i * width,
                    kind="glitch_edge",
                    node=node,
                    wire=self.wire,
                )

    def _params(self) -> Dict:
        return {
            "seed": self.seed,
            "rate_hz": self.rate_hz,
            "duration_s": self.duration_s,
            "start_s": self.start_s,
            "wire": self.wire,
            "nodes": list(self.nodes) if self.nodes else None,
            "edges": self.edges,
            "width_s": self.width_s,
        }


# ----------------------------------------------------------------------
# The container: a named, composable set of faults.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultSpec:
    """An ordered set of fault primitives applied to one run.

    Empty fault specs are valid and behave exactly like passing no
    faults at all to the runner — same backend selection, same
    transaction stream — while still producing a
    :class:`~repro.faults.report.ReliabilityReport` (the clean
    baseline row of a reliability sweep).
    """

    faults: Tuple[Fault, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __add__(self, other: "FaultSpec") -> "FaultSpec":
        if not isinstance(other, FaultSpec):
            return NotImplemented
        return FaultSpec(
            faults=self.faults + other.faults,
            name=self.name or other.name,
        )

    def compile(self, spec) -> Tuple[Injection, ...]:
        """The deterministic, time-sorted injection schedule for
        ``spec``.  ``fault_index`` on every action names the source
        primitive; ordering ties break by primitive order."""
        actions = []
        for index, fault in enumerate(self.faults):
            for action in fault._injections(spec):
                actions.append(
                    Injection(
                        at_ps=action.at_ps,
                        kind=action.kind,
                        node=action.node,
                        wire=action.wire,
                        value=action.value,
                        fault_index=index,
                    )
                )
        return tuple(sorted(actions, key=lambda a: (a.at_ps, a.fault_index)))

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "faults": [fault.to_dict() for fault in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Dict, lenient: bool = False) -> "FaultSpec":
        unknown = set(data) - {"name", "faults"}
        if unknown and not lenient:
            raise ConfigurationError(
                f"unknown FaultSpec key(s): {', '.join(sorted(unknown))}"
            )
        return cls(
            name=data.get("name", ""),
            faults=tuple(
                fault_from_dict(item, lenient=lenient)
                for item in data.get("faults", ())
            ),
        )


_FAULT_KINDS: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        WireGlitch, StuckAt, DropEdge, BitFlip, ClockDrift, NodePowerLoss,
        RandomGlitches,
    )
}


def fault_from_dict(data: Dict, lenient: bool = False) -> Fault:
    """Rebuild a fault primitive from :meth:`Fault.to_dict` output.

    ``lenient=True`` drops unknown parameters (future schema growth);
    an unknown *kind* always fails — there is nothing to fall back to.
    """
    data = dict(data)
    kind = data.pop("kind", None)
    cls = _FAULT_KINDS.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown fault kind {kind!r}; expected one of "
            f"{sorted(_FAULT_KINDS)}"
        )
    if lenient:
        known = {f.name for f in dataclasses.fields(cls)}
        data = {k: v for k, v in data.items() if k in known}
    if "nodes" in data and data["nodes"] is not None:
        data["nodes"] = tuple(data["nodes"])
    try:
        return cls(**data)
    except TypeError as exc:
        raise ConfigurationError(f"bad {kind} parameters: {exc}") from None


def normalize_faults(faults) -> Optional[FaultSpec]:
    """Coerce the runner's ``faults=`` argument to a FaultSpec.

    Accepts ``None`` (no reliability analysis), a :class:`FaultSpec`,
    a single :class:`Fault`, or an iterable of faults.
    """
    if faults is None or isinstance(faults, FaultSpec):
        return faults
    if isinstance(faults, Fault):
        return FaultSpec(faults=(faults,))
    return FaultSpec(faults=tuple(faults))
