"""Binds a compiled injection schedule to a live edge-backend system.

Zero-overhead hook
------------------
The edge engine's per-transition hot path (:meth:`repro.sim.signals.Net._apply`)
is deliberately lean — PR1 tuned it to an attribute load and a tuple
walk — so fault interception must cost nothing when no faults are
active.  The injector therefore never touches :class:`Net` globally:
for each *targeted* segment it swaps the instance's class to
:class:`FaultableNet`, a ``__slots__ = ()`` subclass whose ``_apply``
consults per-net fault state held in a module-level registry.
Untargeted nets (and every net in a fault-free run) keep the original
class and the original code path, byte for byte.  ``finalize()``
restores the classes and empties the registry.

The registry keeps a strong reference to each faulted net, so an
``id()`` key can never be reused while its entry is live.

Fault semantics realised here
-----------------------------
* ``glitch_edge`` — a raw transition (listeners fire) that bypasses
  the driver-shadow bookkeeping: noise, not intent.
* ``force_start``/``force_end`` — the wire pins to a level; driver
  transitions are shadowed and replayed at release.
* ``drop_start``/``drop_end`` — the next N driver transitions are
  swallowed (the wire holds its stale level); release resyncs.
* ``flip_start``/``flip_end`` — the wire carries the complement of
  whatever is driven during the window.
* ``power_off``/``power_on`` — member brown-out via
  :meth:`repro.core.node.MBusNode.power_loss` and external restore.
* ``clock_drift`` — static ppm skew applied to the node's pad/mux
  delays (and the generated clock period on the mediator node).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.faults.primitives import FaultSpec, Injection
from repro.sim.signals import Net

#: id(net) -> _NetFaultState for every currently-faulted net.
_STATE: Dict[int, "_NetFaultState"] = {}


class _NetFaultState:
    """Mutable per-net fault state (strongly references the net)."""

    __slots__ = ("net", "forced", "inverted", "drop_remaining", "dropped",
                 "shadow")

    def __init__(self, net: Net):
        self.net = net
        self.forced: Optional[int] = None
        self.inverted = False
        self.drop_remaining = 0
        self.dropped = 0
        #: The level the drivers believe the wire holds.
        self.shadow = net.value


class FaultableNet(Net):
    """A :class:`Net` whose applies pass through fault state.

    No extra slots: instances are ordinary ``Net`` objects whose
    ``__class__`` was swapped, so the swap is always legal and
    reversible.  Pending-apply events captured before the swap still
    dispatch here (``_fire_pending`` resolves ``self._apply`` at call
    time).
    """

    __slots__ = ()

    def _apply(self, value: int) -> None:
        state = _STATE[id(self)]
        state.shadow = value
        if state.inverted:
            value ^= 1
        if state.forced is not None:
            return                       # pinned: driver intent shadowed
        if value == self._value:
            return
        if state.drop_remaining > 0:
            state.drop_remaining -= 1
            state.dropped += 1
            return                       # edge swallowed; level goes stale
        _raw_transition(self, value)


def _raw_transition(net: Net, value: int) -> None:
    """Flip the wire and notify listeners, bypassing fault state.

    Calls the base-class apply directly so fault-made transitions can
    never diverge from driver-made ones if ``Net._apply`` evolves.
    """
    Net._apply(net, value)


class FaultInjector:
    """Schedules a :class:`FaultSpec`'s compiled actions on a system.

    Lifecycle: construct against a *built* edge-mode
    :class:`~repro.core.bus.MBusSystem`, :meth:`arm` before traffic is
    scheduled, run the simulation, :meth:`finalize` to restore net
    classes and freeze the injection statistics.
    """

    def __init__(self, system, fault_spec: FaultSpec, spec) -> None:
        if getattr(system, "mode", "edge") != "edge":
            raise ConfigurationError(
                "fault injection disturbs wires and power domains; it "
                "requires the edge-accurate backend (mode='edge')"
            )
        self.system = system
        self.fault_spec = fault_spec
        self.schedule: Tuple[Injection, ...] = fault_spec.compile(spec)
        self._armed = False
        self._finalized = False
        self._bound_nets: List[Net] = []
        #: (fault_index, at_ps, kind) for every performed action.
        self.performed: List[Tuple[int, int, str]] = []
        self.counts: Dict[str, int] = {}
        self.edges_injected = 0
        self.edges_dropped = 0

    # ------------------------------------------------------------------
    # Binding.
    # ------------------------------------------------------------------
    def _net_for(self, action: Injection) -> Net:
        node = self.system.node(action.node)
        net = node.dout if action.wire == "data" else node.clkout
        if net is None:
            raise ConfigurationError(
                f"node {action.node!r} has no attached ring segments; "
                "build() the system before arming faults"
            )
        return net

    def _state_for(self, net: Net) -> _NetFaultState:
        state = _STATE.get(id(net))
        if state is None:
            state = _NetFaultState(net)
            _STATE[id(net)] = state
            net.__class__ = FaultableNet
            self._bound_nets.append(net)
        return state

    def arm(self) -> None:
        """Schedule every compiled action on the system's simulator."""
        if self._armed:
            return
        self._armed = True
        sim = self.system.sim
        for action in self.schedule:
            if action.kind == "clock_drift":
                # Static skew: applied immediately at bind time.
                self._apply_clock_drift(action)
                self.performed.append(
                    (action.fault_index, action.at_ps, action.kind)
                )
                self.counts[action.kind] = self.counts.get(action.kind, 0) + 1
                continue
            sim.schedule_at(action.at_ps, self._perform_fn(action))

    def _perform_fn(self, action: Injection):
        return lambda: self._perform(action)

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------
    def _perform(self, action: Injection) -> None:
        handler = getattr(self, "_do_" + action.kind)
        handler(action)
        self.performed.append((action.fault_index, action.at_ps, action.kind))
        self.counts[action.kind] = self.counts.get(action.kind, 0) + 1

    def _do_glitch_edge(self, action: Injection) -> None:
        net = self._net_for(action)
        state = _STATE.get(id(net))
        if state is not None and state.forced is not None:
            return                       # a stuck wire masks the noise
        self.edges_injected += 1
        _raw_transition(net, net.value ^ 1)

    def _do_force_start(self, action: Injection) -> None:
        net = self._net_for(action)
        # _state_for seeds a fresh state's shadow from the wire; an
        # already-bound net keeps its driver-intent shadow (the wire
        # itself may be stale after a DropEdge).
        state = self._state_for(net)
        state.forced = int(action.value)
        _raw_transition(net, state.forced)

    def _do_force_end(self, action: Injection) -> None:
        net = self._net_for(action)
        state = self._state_for(net)
        state.forced = None
        value = state.shadow ^ 1 if state.inverted else state.shadow
        _raw_transition(net, value)

    def _do_drop_start(self, action: Injection) -> None:
        net = self._net_for(action)
        state = self._state_for(net)
        state.drop_remaining += int(action.value)

    def _do_drop_end(self, action: Injection) -> None:
        net = self._net_for(action)
        state = self._state_for(net)
        state.drop_remaining = 0
        if state.forced is None:
            value = state.shadow ^ 1 if state.inverted else state.shadow
            _raw_transition(net, value)

    def _do_flip_start(self, action: Injection) -> None:
        net = self._net_for(action)
        state = self._state_for(net)
        state.inverted = True
        if state.forced is None:
            _raw_transition(net, state.shadow ^ 1)

    def _do_flip_end(self, action: Injection) -> None:
        net = self._net_for(action)
        state = self._state_for(net)
        state.inverted = False
        if state.forced is None:
            _raw_transition(net, state.shadow)

    def _do_power_off(self, action: Injection) -> None:
        self.system.node(action.node).power_loss()

    def _do_power_on(self, action: Injection) -> None:
        node = self.system.node(action.node)
        if not node.bus_domain.is_on:
            node.bus_domain.power_on("fault:power-restored")
        if not node.layer_domain.is_on:
            node.layer_domain.power_on("fault:power-restored")

    def _do_clock_drift(self, action: Injection) -> None:  # pragma: no cover
        # Dispatched inline from arm(); kept for handler completeness.
        self._apply_clock_drift(action)

    def _apply_clock_drift(self, action: Injection) -> None:
        # ``+ppm`` is a uniformly *fast* part: every timescale the
        # node owns shrinks by the factor — pad/mux propagation delays
        # divide by it, and on the mediator the generated clock period
        # divides too (clock_hz multiplies).  One sign convention,
        # physically consistent across all of a node's timing.
        node = self.system.node(action.node)
        factor = 1.0 + action.value / 1e6
        for ctl in (node.data_ctl, node.clk_ctl):
            if ctl is None:
                continue
            ctl.forward_delay_ps = max(1, int(round(
                ctl.forward_delay_ps / factor
            )))
            ctl.drive_delay_ps = max(1, int(round(
                ctl.drive_delay_ps / factor
            )))
        if node.mediator is not None:
            timing = node.mediator.timing
            node.mediator.timing = dataclasses.replace(
                timing, clock_hz=timing.clock_hz * factor
            )

    # ------------------------------------------------------------------
    # Teardown & stats.
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Restore net classes and fold per-net stats into totals."""
        if self._finalized:
            return
        self._finalized = True
        for net in self._bound_nets:
            state = _STATE.pop(id(net), None)
            if state is not None:
                self.edges_dropped += state.dropped
            net.__class__ = Net
        self._bound_nets = []
